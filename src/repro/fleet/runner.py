"""Deterministic execution of a placed fleet on the vectorized fast path.

:func:`run_fleet` turns (compiled fleet, placement) into per-machine FIFO
event streams and replays them with
:func:`repro.cluster.fleetsim.fifo_completion_times` — the same c-server
recursion the kernel benchmark proved bit-identical to the discrete-event
kernel.  The execution model:

* Every request of a stream spawns one *job per wrap unit* of its plan;
  a unit's job costs ``share x service`` plus a fixed remote-dispatch
  penalty per coupling edge whose other endpoint landed on a different
  machine (half the edge weight each, charged by network distance from
  the placement cost model).  Co-located placements therefore run
  measurably faster — the placement objective and the runner agree.
* Each machine serves the merged (stable-sorted) job stream of its
  resident units through a FIFO queue with one server per core.
* A chaos schedule shifts arrivals on dark machines to the machine's
  ``next_up`` instant; a request delayed on any of its units counts as
  *disrupted* and its sojourn includes the outage wait.
* A request completes when its last job does; per-tenant accounting
  (goodput within a deadline, p99, fair-share) falls out of the
  stream → tenant mapping.

Degenerate anchor: a single-tenant, single-machine fleet with one
unit-share wrap (``fleet_from_scenario``) performs bit-identical float
operations to ``simulate_des`` / ``simulate_vectorized`` — multiplying
services by a share of exactly 1.0 and adding a penalty of exactly 0.0
is skipped, the stable sort of an already-sorted stream is the identity,
and ``max(completion, -inf)`` preserves bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.fleetsim import (
    FleetScenario,
    fifo_completion_times,
    scenario_draws,
)
from repro.errors import SimulationError
from repro.fleet.placement import (
    CostParams,
    PlacementPlan,
    remote_penalties,
)
from repro.fleet.spec import Fleet
from repro.metrics.stats import LatencySummary, summarize_latencies


@dataclass(frozen=True)
class TenantReport:
    """Per-tenant accounting of one fleet run."""

    requests: int
    good: int                 # completed within the goodput deadline
    disrupted: int
    p99_ms: float
    goodput_fraction: float
    demand_cores: float
    #: demand-normalized share of the fleet's goodput (quota accounting)
    goodput_share: float


@dataclass(frozen=True)
class FleetRunReport:
    """Outcome of one deterministic fleet execution."""

    completed: int
    jobs: int
    duration_ms: float
    sojourn: LatencySummary
    service: LatencySummary
    goodput_fraction: float
    disrupted: int
    machines_used: int
    packing_fraction: float
    cross_machine_traffic: float     # messages over machine boundaries
    cross_zone_traffic: float        # messages over zone boundaries
    fairness_jain: float
    per_tenant: Dict[str, TenantReport] = field(default_factory=dict)

    def quality_fields(self) -> dict:
        """The bit-comparison surface, mirroring ``FleetResult``."""
        return {
            "completed": self.completed,
            "duration_ms": self.duration_ms,
            "sojourn_mean_ms": self.sojourn.mean_ms,
            "sojourn_p50_ms": self.sojourn.p50_ms,
            "sojourn_p90_ms": self.sojourn.p90_ms,
            "sojourn_p99_ms": self.sojourn.p99_ms,
            "sojourn_max_ms": self.sojourn.max_ms,
            "service_mean_ms": self.service.mean_ms,
        }

    def fleet_fields(self) -> dict:
        """Fleet-level quality metrics (all simulated, never wall time)."""
        return {
            "goodput_fraction": self.goodput_fraction,
            "disrupted": self.disrupted,
            "machines_used": self.machines_used,
            "packing_fraction": self.packing_fraction,
            "cross_machine_traffic": self.cross_machine_traffic,
            "cross_zone_traffic": self.cross_zone_traffic,
            "fairness_jain": self.fairness_jain,
        }


def _shift_arrivals(arrivals: np.ndarray, intervals
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Push arrivals inside outage windows to the recovery instant.

    Returns (shifted, disrupted mask); the input array is not modified.
    Windows are processed in order, so an arrival pushed into a later
    window keeps sliding (matches ``ChaosSchedule.next_up``).
    """
    shifted = arrivals
    disrupted = np.zeros(len(arrivals), dtype=bool)
    for start, end in intervals:
        mask = (shifted >= start) & (shifted < end)
        if mask.any():
            if shifted is arrivals:
                shifted = arrivals.copy()
            shifted[mask] = end
            disrupted |= mask
    return shifted, disrupted


def run_fleet(fleet: Fleet, placement: PlacementPlan, *,
              chaos=None, params: Optional[CostParams] = None,
              registry=None, tracer=None) -> FleetRunReport:
    """Execute the placed fleet; deterministic for fixed spec + placement."""
    spec = fleet.spec
    machines = fleet.machines
    assignment = placement.assignment
    if len(assignment) != len(fleet.units):
        raise SimulationError("placement does not cover the fleet")
    p = params or CostParams.from_calibration(fleet.cal)
    if tracer is not None:
        tracer.event("fleet.run.start", entity="fleet",
                     streams=len(spec.streams), units=len(fleet.units),
                     requests=spec.total_requests)

    # -- per-stream draws (same RNG mapping as fleetsim.scenario_draws) ----
    arrivals: List[np.ndarray] = []
    services: List[np.ndarray] = []
    for stream in spec.streams:
        scen = FleetScenario(servers=1, rps=stream.rps,
                             requests=stream.requests, seed=stream.seed,
                             service_pool_ms=spec.service_pool_ms)
        gaps, svc = scenario_draws(scen)
        arrivals.append(np.cumsum(gaps))
        services.append(svc)

    penalties = remote_penalties(fleet, assignment, p)

    # -- per-machine merged job streams ------------------------------------
    units_by_machine: Dict[int, List[int]] = {}
    for unit, mi in zip(fleet.units, assignment):
        units_by_machine.setdefault(mi, []).append(unit.uid)

    #: request completion time per stream (max over the stream's units)
    req_done = [np.full(s.requests, -np.inf) for s in spec.streams]
    disrupted_mask = [np.zeros(s.requests, dtype=bool)
                      for s in spec.streams]
    total_jobs = 0
    duration_ms = 0.0
    for mi in sorted(units_by_machine):
        machine = machines[mi]
        uids = sorted(units_by_machine[mi])
        job_arr: List[np.ndarray] = []
        job_svc: List[np.ndarray] = []
        down = chaos.down_intervals(machine.name) if chaos is not None else ()
        for uid in uids:
            unit = fleet.units[uid]
            arr = arrivals[unit.stream]
            if down:
                arr, mask = _shift_arrivals(arr, down)
                disrupted_mask[unit.stream] |= mask
            svc = services[unit.stream]
            if unit.share != 1.0 or penalties[uid] != 0.0:
                svc = svc * unit.share + penalties[uid]
            job_arr.append(arr)
            job_svc.append(svc)
        arr = job_arr[0] if len(job_arr) == 1 else np.concatenate(job_arr)
        svc = job_svc[0] if len(job_svc) == 1 else np.concatenate(job_svc)
        order = np.argsort(arr, kind="stable")
        completions = np.empty(len(arr), dtype=float)
        completions[order] = fifo_completion_times(
            arr[order], svc[order], max(1, int(machine.cores)))
        total_jobs += len(arr)
        duration_ms = max(duration_ms, float(completions.max()))
        offset = 0
        for uid in uids:
            unit = fleet.units[uid]
            n = spec.streams[unit.stream].requests
            np.maximum(req_done[unit.stream],
                       completions[offset:offset + n],
                       out=req_done[unit.stream])
            offset += n

    # -- reductions (stream order, like fleetsim's request indexing) -------
    sojourns = [done - arr for done, arr in zip(req_done, arrivals)]
    all_sojourns = (sojourns[0] if len(sojourns) == 1
                    else np.concatenate(sojourns))
    all_services = (services[0] if len(services) == 1
                    else np.concatenate(services))
    pool_mean = fleet.pool_mean_ms()

    completed = spec.total_requests
    disrupted = int(sum(int(m.sum()) for m in disrupted_mask))
    good_total = 0
    tenant_rows: Dict[str, dict] = {}
    for si, stream in enumerate(spec.streams):
        deadline = stream.deadline_factor * pool_mean
        good = int((sojourns[si] <= deadline).sum())
        good_total += good
        row = tenant_rows.setdefault(stream.tenant, {
            "requests": 0, "good": 0, "disrupted": 0, "sojourns": [],
            "demand": 0.0})
        row["requests"] += stream.requests
        row["good"] += good
        row["disrupted"] += int(disrupted_mask[si].sum())
        row["sojourns"].append(sojourns[si])
    for unit in fleet.units:
        tenant_rows[unit.tenant]["demand"] += unit.cores

    fleet_good_share = float(good_total) if good_total else 1.0
    per_tenant: Dict[str, TenantReport] = {}
    fractions: List[float] = []
    for tenant in spec.tenants:
        row = tenant_rows[tenant]
        merged = np.concatenate(row["sojourns"])
        fraction = row["good"] / row["requests"]
        fractions.append(fraction)
        demand_share = row["demand"] / fleet.demand_cores()
        per_tenant[tenant] = TenantReport(
            requests=row["requests"], good=row["good"],
            disrupted=row["disrupted"],
            p99_ms=summarize_latencies(merged).p99_ms,
            goodput_fraction=fraction,
            demand_cores=row["demand"],
            goodput_share=(row["good"] / fleet_good_share) / demand_share
            if demand_share > 0 else 0.0)
    n_t = len(fractions)
    sum_f = sum(fractions)
    sum_sq = sum(f * f for f in fractions)
    fairness = (sum_f * sum_f / (n_t * sum_sq)) if sum_sq > 0 else 1.0

    cross_machine = cross_zone = 0.0
    for edge in fleet.edges:
        ma, mb = assignment[edge.a], assignment[edge.b]
        if ma == mb:
            continue
        messages = edge.weight * spec.streams[edge.stream].requests
        cross_machine += messages
        if machines[ma].zone != machines[mb].zone:
            cross_zone += messages

    report = FleetRunReport(
        completed=completed,
        jobs=total_jobs,
        duration_ms=duration_ms,
        sojourn=summarize_latencies(all_sojourns),
        service=summarize_latencies(all_services),
        goodput_fraction=good_total / completed,
        disrupted=disrupted,
        machines_used=len(units_by_machine),
        packing_fraction=placement.packing_fraction(fleet),
        cross_machine_traffic=cross_machine,
        cross_zone_traffic=cross_zone,
        fairness_jain=fairness,
        per_tenant=per_tenant)
    if registry is not None:
        registry.inc("fleet.run.requests", completed)
        registry.inc("fleet.run.jobs", total_jobs)
        registry.inc("fleet.run.disrupted", disrupted)
        registry.inc("fleet.run.machines_used", report.machines_used)
    if tracer is not None:
        tracer.event("fleet.run.done", entity="fleet",
                     completed=completed, jobs=total_jobs,
                     disrupted=disrupted,
                     p99_ms=report.sojourn.p99_ms)
    return report
