"""Real Python callables and the registry the executor dispatches from."""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

from repro.errors import DeploymentError
from repro.workflow.behavior import FunctionBehavior, SegmentKind
from repro.workflow.model import Workflow

#: a function takes the request state (any picklable object) and returns an
#: updated state
LocalFunction = Callable[[Any], Any]


def _spin_ms(duration_ms: float) -> None:
    """Burn CPU for ``duration_ms`` (holds the GIL, like real compute)."""
    deadline = time.perf_counter() + duration_ms / 1e3
    x = 0
    while time.perf_counter() < deadline:
        x += 1  # genuine bytecode execution so the GIL stays busy


def synthesize(behavior: FunctionBehavior, name: str = "fn") -> LocalFunction:
    """A real callable reproducing a behaviour's CPU/IO segments.

    CPU segments spin (GIL held); IO segments ``time.sleep`` (GIL released
    — the voluntary drop of Figure 2).
    """

    def body(state: Any) -> Any:
        for segment in behavior:
            if segment.kind is SegmentKind.CPU:
                _spin_ms(segment.duration_ms)
            else:
                time.sleep(segment.duration_ms / 1e3)
        if isinstance(state, dict):
            return {**state, name: "done"}
        return state

    body.__name__ = name
    return body


class FunctionRegistry:
    """Named callables the executor (and generated orchestrators) look up."""

    def __init__(self) -> None:
        self._functions: Dict[str, LocalFunction] = {}

    def register(self, name: str, fn: LocalFunction) -> None:
        if name in self._functions:
            raise DeploymentError(f"function {name!r} already registered")
        self._functions[name] = fn

    def get(self, name: str) -> LocalFunction:
        try:
            return self._functions[name]
        except KeyError:
            raise DeploymentError(f"unknown function {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def __len__(self) -> int:
        return len(self._functions)


def synthesize_workflow(workflow: Workflow,
                        registry: Optional[FunctionRegistry] = None
                        ) -> FunctionRegistry:
    """Register a synthesized callable for every function of a workflow."""
    registry = registry or FunctionRegistry()
    for fn in workflow.functions:
        registry.register(fn.name, synthesize(fn.behavior, fn.name))
    return registry


# ---------------------------------------------------------------------------
# helpers referenced by generated orchestrator code (§5 Generator)
# ---------------------------------------------------------------------------

_ACTIVE_REGISTRY: Optional[FunctionRegistry] = None


def activate_registry(registry: FunctionRegistry) -> None:
    """Install the registry generated orchestrators dispatch through."""
    global _ACTIVE_REGISTRY
    _ACTIVE_REGISTRY = registry


def call_function(name: Any, state: Any) -> Any:
    """Entry used by generated orchestrator code: run one function (or a
    tuple of functions, for a multi-function process) against ``state``."""
    if _ACTIVE_REGISTRY is None:
        raise DeploymentError("no active function registry")
    names = name if isinstance(name, (tuple, list)) else (name,)
    for n in names:
        state = _ACTIVE_REGISTRY.get(n)(state)
    return state
