"""Execute a deployment plan with real threads, processes and pools."""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.wrap import DeploymentPlan, ExecMode, ProcessAssignment
from repro.errors import DeploymentError
from repro.localexec.functions import (  # call_function re-exported: the
    FunctionRegistry,                    # generated orchestrators import it
    call_function,                       # from this module (§5 Generator)
    synthesize_workflow,
)
from repro.workflow.model import Workflow

__all__ = ["LocalExecutor", "LocalRunResult", "call_function", "invoke_wrap",
           "set_affinity"]


def set_affinity(cores: list[int]) -> None:
    """Pin the current process to ``cores`` (best effort; §5's psutil use)."""
    try:
        os.sched_setaffinity(0, set(cores) & os.sched_getaffinity(0)
                             or os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux or restricted environment
        pass


def invoke_wrap(wrap_name: str, state: Any) -> Any:
    """Cross-wrap invocation hook for generated orchestrators.

    The local executor runs every wrap in-process, so this is a direct
    dispatch placeholder; a cluster deployment would HTTP-POST the wrap's
    OpenFaaS function here.
    """
    return state


def _child_entry(functions: tuple[str, ...], behaviors: dict, state: Any,
                 conn) -> None:
    """Forked-process body: run the group's functions as real threads."""
    from repro.localexec.functions import synthesize

    results: Dict[str, float] = {}

    def run_one(name: str) -> None:
        t0 = time.perf_counter()
        synthesize(behaviors[name], name)(state)
        results[name] = (time.perf_counter() - t0) * 1e3

    threads = [threading.Thread(target=run_one, args=(n,), name=n)
               for n in functions]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    conn.send(results)
    conn.close()


@dataclass
class LocalRunResult:
    """Outcome of one real execution."""

    latency_ms: float
    #: wall-clock duration of each function's body
    function_ms: Dict[str, float] = field(default_factory=dict)
    #: final state object returned by the last stage
    state: Any = None


class LocalExecutor:
    """Runs one workflow request according to a plan, for real.

    * ``THREAD`` groups -> ``threading.Thread`` in this process;
    * ``PROCESS`` groups -> ``multiprocessing.Process`` (fork) with a pipe
      returning per-function timings;
    * pool plans -> a shared ``ProcessPoolExecutor`` warmed at construction.
    """

    def __init__(self, workflow: Workflow, plan: DeploymentPlan, *,
                 registry: Optional[FunctionRegistry] = None) -> None:
        plan.validate(workflow)
        self.workflow = workflow
        self.plan = plan
        self.registry = (registry if registry is not None
                         else synthesize_workflow(workflow))
        missing = [f.name for f in workflow.functions
                   if f.name not in self.registry]
        if missing:
            raise DeploymentError(f"registry missing functions: {missing}")
        self._behaviors = {f.name: f.behavior for f in workflow.functions}
        self._pool: Optional[ProcessPoolExecutor] = None
        if plan.pool_workers > 0:
            # pre-forked at deploy time, like the -P variants (§4)
            self._pool = ProcessPoolExecutor(max_workers=plan.pool_workers)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "LocalExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- execution ------------------------------------------------------------
    def _run_thread_group(self, group: ProcessAssignment, state: Any,
                          result: LocalRunResult) -> list[threading.Thread]:
        threads = []
        for name in group.functions:
            fn = self.registry.get(name)

            def body(name=name, fn=fn):
                t0 = time.perf_counter()
                fn(state)
                result.function_ms[name] = (time.perf_counter() - t0) * 1e3

            thread = threading.Thread(target=body, name=name)
            thread.start()
            threads.append(thread)
        return threads

    def _run_forked_group(self, group: ProcessAssignment, state: Any):
        parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
        behaviors = {n: self._behaviors[n] for n in group.functions}
        proc = multiprocessing.Process(
            target=_child_entry,
            args=(group.functions, behaviors, state, child_conn))
        proc.start()
        child_conn.close()
        return proc, parent_conn

    def _run_pool_stage(self, names: list[str], state: Any,
                        result: LocalRunResult) -> None:
        assert self._pool is not None
        ordered = sorted(names,
                         key=lambda n: self._behaviors[n].solo_ms,
                         reverse=True)  # longest first, like Chiron-P
        t0s = {n: time.perf_counter() for n in ordered}
        futures = {n: self._pool.submit(_pool_task, self._behaviors[n], n,
                                        state) for n in ordered}
        for name, future in futures.items():
            future.result()
            result.function_ms[name] = (time.perf_counter()
                                        - t0s[name]) * 1e3

    def run(self, state: Any = None) -> LocalRunResult:
        """One request through every stage of the plan."""
        state = state if state is not None else {}
        result = LocalRunResult(latency_ms=0.0, state=state)
        start = time.perf_counter()
        for stage_idx in range(len(self.workflow.stages)):
            parts = self.plan.stage_wraps(stage_idx)
            if not parts:
                raise DeploymentError(f"no wrap covers stage {stage_idx}")
            if self._pool is not None:
                names = [n for _w, sa in parts for n in sa.function_names]
                self._run_pool_stage(names, state, result)
                continue
            threads: list[threading.Thread] = []
            children = []
            for _wrap, sa in parts:
                # fork first, then clone threads (Figure 9's orchestrator)
                for group in sa.forked_processes:
                    children.append(self._run_forked_group(group, state))
                for group in sa.thread_groups:
                    threads.extend(self._run_thread_group(group, state,
                                                          result))
            for thread in threads:
                thread.join()
            for proc, conn in children:
                timings = conn.recv()
                result.function_ms.update(timings)
                proc.join()
                conn.close()
        result.latency_ms = (time.perf_counter() - start) * 1e3
        return result


def _pool_task(behavior, name: str, state: Any) -> str:
    """Top-level pool task (must be picklable)."""
    from repro.localexec.functions import synthesize

    synthesize(behavior, name)(state)
    return name
