"""Profile *real* function executions (the strace role, locally).

For synthesized callables we can do exactly what the paper's Profiler does:
intercept blocking operations (here, ``time.sleep``) to record block
periods with timestamps, then reconstruct the CPU/IO behaviour.  For
arbitrary callables, only the solo latency is observable; the profile
degrades to a single CPU segment.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional
from unittest import mock

from repro.core.profiler import FunctionProfile
from repro.errors import ProfilingError
from repro.workflow.behavior import FunctionBehavior


class RealProfiler:
    """Measures solo-run latency and block periods of real callables."""

    def __init__(self, *, repeats: int = 3) -> None:
        if repeats < 1:
            raise ProfilingError("repeats must be >= 1")
        self.repeats = repeats

    def profile(self, name: str, fn: Callable[[Any], Any],
                state: Any = None) -> FunctionProfile:
        """Solo-run ``fn`` with sleep interception; median-ish aggregation.

        The interception plays strace's role: every blocking call's start
        offset and duration are logged; remaining time is CPU.
        """
        best: Optional[tuple[float, list[tuple[float, float]]]] = None
        for _ in range(self.repeats):
            periods: list[tuple[float, float]] = []
            run_start = time.perf_counter()
            real_sleep = time.sleep

            def traced_sleep(seconds: float) -> None:
                t0 = (time.perf_counter() - run_start) * 1e3
                real_sleep(seconds)
                t1 = (time.perf_counter() - run_start) * 1e3
                periods.append((t0, t1))

            with mock.patch("time.sleep", traced_sleep):
                fn(state if state is not None else {})
            total_ms = (time.perf_counter() - run_start) * 1e3
            if best is None or total_ms < best[0]:
                best = (total_ms, periods)
        assert best is not None
        total_ms, periods = best
        behavior = FunctionBehavior.from_block_periods(total_ms, periods)
        return FunctionProfile(name=name, behavior=behavior,
                               solo_latency_ms=total_ms)
