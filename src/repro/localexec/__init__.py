"""Real local execution of deployment plans.

Everything else in this package simulates; :mod:`repro.localexec` runs a
:class:`~repro.core.wrap.DeploymentPlan` with **genuine OS abstractions** —
``threading.Thread`` for thread groups, ``multiprocessing.Process`` for
forked groups, ``concurrent.futures.ProcessPoolExecutor`` for pool plans,
and OS pipes for inter-process state return — exactly the mechanisms the
paper's Chiron generates orchestrator code for (§5).

This is the demonstration path (examples, smoke tests): on a many-core
machine the thread/process trade-offs reproduce for real; figures still
come from the simulator because this host cannot provide a 40-core node
(see DESIGN.md).

Functions are real Python callables; :func:`synthesize` builds one from a
:class:`~repro.workflow.FunctionBehavior` (CPU segments spin, IO segments
sleep — the sleep path releases the real GIL just like Figure 2 describes).
"""

from repro.localexec.executor import LocalExecutor, LocalRunResult
from repro.localexec.functions import (
    FunctionRegistry,
    synthesize,
    synthesize_workflow,
)
from repro.localexec.profiler import RealProfiler

__all__ = [
    "FunctionRegistry",
    "LocalExecutor",
    "LocalRunResult",
    "RealProfiler",
    "synthesize",
    "synthesize_workflow",
]
