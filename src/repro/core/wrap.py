"""The wrap abstraction and deployment plans (§3.1).

A *wrap* is a subset of a workflow's functions that shares one sandbox; it is
"the fundamental unit for allocating a sandbox".  Within a wrap, each stage's
functions are grouped into *processes*; the functions of one process execute
as threads of that process.  Per-group :class:`ExecMode` records whether the
group runs as threads of the wrap's resident orchestrator process
(``THREAD`` — no fork, no interpreter startup) or in a freshly forked child
(``PROCESS`` — pays Eq. 4's block + startup).  ``POOL`` plans instead
dispatch every function to a pre-forked worker pool (§4 "True Parallelism").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional

from repro.errors import DeploymentError
from repro.workflow.model import Workflow


class ExecMode(enum.Enum):
    """How one process-group of a wrap executes."""

    THREAD = "thread"    # threads of the wrap's orchestrator process
    PROCESS = "process"  # a forked child process (functions as its threads)
    POOL = "pool"        # tasks submitted to the sandbox's process pool


@dataclass(frozen=True)
class ProcessAssignment:
    """One process of a wrap: the named functions run as its threads."""

    functions: tuple[str, ...]
    mode: ExecMode = ExecMode.PROCESS

    def __post_init__(self) -> None:
        if not self.functions:
            raise DeploymentError("a process assignment needs >= 1 function")
        if len(set(self.functions)) != len(self.functions):
            raise DeploymentError(f"duplicate functions in {self.functions}")

    def __len__(self) -> int:
        return len(self.functions)

    def fingerprint(self, behaviors: Optional[Dict[str, tuple]] = None
                    ) -> tuple:
        """Canonical hashable identity of this process group.

        Structural by default (mode + function names, in order).  With
        ``behaviors`` — a function-name → behaviour-fingerprint map — names
        are replaced by behaviour fingerprints, producing the
        *prediction-relevant* form: two groups whose functions behave
        identically fingerprint equal even under renames, which is what lets
        the stage-level prediction cache key on it.
        """
        if behaviors is None:
            return (self.mode.value, self.functions)
        return (self.mode.value,
                tuple(behaviors[f] for f in self.functions))


@dataclass(frozen=True)
class StageAssignment:
    """A wrap's share of one stage: a list of process groups."""

    stage_index: int
    processes: tuple[ProcessAssignment, ...]

    def __post_init__(self) -> None:
        if self.stage_index < 0:
            raise DeploymentError(f"bad stage index {self.stage_index}")
        if not self.processes:
            raise DeploymentError("a stage assignment needs >= 1 process")
        names = [f for p in self.processes for f in p.functions]
        if len(set(names)) != len(names):
            raise DeploymentError(
                f"function assigned to two processes in stage "
                f"{self.stage_index}: {names}")

    @property
    def function_names(self) -> list[str]:
        return [f for p in self.processes for f in p.functions]

    @property
    def forked_processes(self) -> list[ProcessAssignment]:
        return [p for p in self.processes if p.mode is ExecMode.PROCESS]

    @property
    def thread_groups(self) -> list[ProcessAssignment]:
        return [p for p in self.processes if p.mode is ExecMode.THREAD]

    def fingerprint(self, behaviors: Optional[Dict[str, tuple]] = None
                    ) -> tuple:
        """Canonical hashable identity: stage index + process fingerprints
        in plan order (order matters — fork positions follow it)."""
        return (self.stage_index,
                tuple(p.fingerprint(behaviors) for p in self.processes))


@dataclass(frozen=True)
class Wrap:
    """One sandbox's worth of deployment: per-stage process assignments."""

    name: str
    stages: tuple[StageAssignment, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise DeploymentError("wrap name must be non-empty")
        indices = [s.stage_index for s in self.stages]
        if len(set(indices)) != len(indices):
            raise DeploymentError(f"wrap {self.name!r} assigns a stage twice")

    def stage(self, index: int) -> Optional[StageAssignment]:
        for sa in self.stages:
            if sa.stage_index == index:
                return sa
        return None

    @property
    def function_names(self) -> list[str]:
        return [f for sa in self.stages for f in sa.function_names]

    @property
    def max_concurrent_processes(self) -> int:
        """Peak process count across stages — sizes the wrap's cpuset.

        Each forked process needs its own core for cross-process true
        parallelism; thread groups ride on the orchestrator's core.
        """
        peak = 1
        for sa in self.stages:
            forked = len(sa.forked_processes)
            uses_orchestrator = 1 if sa.thread_groups else 0
            peak = max(peak, forked + uses_orchestrator)
        return peak

    def fingerprint(self, behaviors: Optional[Dict[str, tuple]] = None
                    ) -> tuple:
        """Canonical hashable identity of the wrap's assignment structure.

        The wrap *name* is deliberately excluded: predictions never depend
        on it, so renamed-but-identical wraps share cache entries.
        """
        return tuple(sa.fingerprint(behaviors) for sa in self.stages)


@dataclass(frozen=True)
class DeploymentPlan:
    """The full m-to-n deployment of one workflow.

    ``cores`` maps wrap name -> allocated whole CPUs (the paper allocates
    whole CPUs, §6).  ``pool_workers`` > 0 switches the plan to pool
    execution (every wrap pre-forks that many workers; used by Chiron-P).
    """

    workflow_name: str
    wraps: tuple[Wrap, ...]
    cores: Dict[str, int] = field(default_factory=dict)
    pool_workers: int = 0
    #: predicted end-to-end latency recorded by PGP (None if not scheduled)
    predicted_latency_ms: Optional[float] = None
    #: the SLO the plan was built against (None for fixed-shape baselines)
    slo_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.wraps:
            raise DeploymentError("a plan needs at least one wrap")
        names = [w.name for w in self.wraps]
        if len(set(names)) != len(names):
            raise DeploymentError(f"duplicate wrap names: {names}")
        if self.pool_workers < 0:
            raise DeploymentError("pool_workers must be >= 0")

    # -- derived views ------------------------------------------------------
    @property
    def n_wraps(self) -> int:
        return len(self.wraps)

    def cores_for(self, wrap: Wrap) -> int:
        """Allocated cores of a wrap (defaults to its process peak)."""
        return int(self.cores.get(wrap.name, wrap.max_concurrent_processes))

    @property
    def total_cores(self) -> int:
        return sum(self.cores_for(w) for w in self.wraps)

    def stage_wraps(self, stage_index: int) -> list[tuple[Wrap, StageAssignment]]:
        """Wraps participating in a stage, plan order (wrap 1 first)."""
        out = []
        for wrap in self.wraps:
            sa = wrap.stage(stage_index)
            if sa is not None:
                out.append((wrap, sa))
        return out

    def processes_in_stage(self, stage_index: int) -> int:
        return sum(len(sa.processes) for _, sa in self.stage_wraps(stage_index))

    # -- fingerprints (prediction-cache keys) -------------------------------
    def stage_fingerprint(self, stage_index: int,
                          workflow: Workflow) -> tuple:
        """Everything stage ``stage_index``'s predicted latency depends on.

        Per participating wrap, in plan order (wrap 1 is special — sibling
        wraps pay invocation + RPC shifts): the wrap's allocated cores and
        its stage assignment with function names resolved to behaviour
        fingerprints.  ``pool_workers`` is included because it both selects
        the pool prediction path and bounds pool concurrency.  Calibration
        is *not* part of this fingerprint — the cache adds its own
        calibration id (see :class:`repro.core.predictor.PredictionCache`).
        """
        if not 0 <= stage_index < len(workflow.stages):
            raise DeploymentError(
                f"workflow {workflow.name!r} has no stage {stage_index}")
        behaviors = {fn.name: fn.behavior.fingerprint()
                     for fn in workflow.stages[stage_index]}
        return (self.pool_workers,
                tuple((self.cores_for(wrap), sa.fingerprint(behaviors))
                      for wrap, sa in self.stage_wraps(stage_index)))

    def fingerprint(self, workflow: Optional[Workflow] = None) -> tuple:
        """Canonical hashable identity of the whole deployment shape.

        Structural without ``workflow`` (wrap fingerprints + cores +
        pool_workers); prediction-relevant with it (behaviour fingerprints
        substituted for names).  Predicted latency / SLO annotations are
        excluded — they describe the plan, they don't change it.
        """
        behaviors = None
        if workflow is not None:
            behaviors = {fn.name: fn.behavior.fingerprint()
                         for fn in workflow.functions}
        return (self.pool_workers,
                tuple((self.cores_for(wrap), wrap.fingerprint(behaviors))
                      for wrap in self.wraps))

    # -- validation ------------------------------------------------------------
    def validate(self, workflow: Workflow) -> None:
        """Check the plan covers ``workflow`` exactly once and respects
        sandbox-compatibility constraints (§3.4 end)."""
        if self.workflow_name != workflow.name:
            raise DeploymentError(
                f"plan targets {self.workflow_name!r}, not {workflow.name!r}")
        assigned: Dict[str, str] = {}
        for wrap in self.wraps:
            for sa in wrap.stages:
                if sa.stage_index >= len(workflow.stages):
                    raise DeploymentError(
                        f"wrap {wrap.name!r} references stage "
                        f"{sa.stage_index} beyond workflow depth")
                stage = workflow.stages[sa.stage_index]
                stage_fn_names = {f.name for f in stage}
                for fname in sa.function_names:
                    if fname not in stage_fn_names:
                        raise DeploymentError(
                            f"function {fname!r} not in stage {sa.stage_index}")
                    if fname in assigned:
                        raise DeploymentError(
                            f"function {fname!r} assigned twice "
                            f"({assigned[fname]!r} and {wrap.name!r})")
                    assigned[fname] = wrap.name
        missing = {f.name for f in workflow.functions} - set(assigned)
        if missing:
            raise DeploymentError(f"functions not deployed: {sorted(missing)}")
        # sandbox-compatibility: conflicting functions must be in
        # different wraps.
        for wrap in self.wraps:
            members = [workflow.function(n) for n in wrap.function_names]
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    if a.conflicts_with(b):
                        raise DeploymentError(
                            f"conflicting functions {a.name!r} and {b.name!r} "
                            f"share wrap {wrap.name!r}")
