"""Orchestrator code generation (§3.1 step Í, §5 "Generator").

Chiron bundles each wrap's functions with a generated *orchestrator* — the
``handler.py`` entry of an OpenFaaS python3-flask template — that forks the
wrap's processes, clones its threads, pins CPU affinity, and forwards state
to the next wrap.  The generator here emits that handler as Python source
(mirroring Figure 9's sketch) so a plan can be inspected, diffed, and
round-tripped in tests; the simulated and local executors consume the plan
object directly.
"""

from __future__ import annotations

import textwrap
from typing import Dict

from repro.core.wrap import DeploymentPlan, ExecMode, Wrap
from repro.errors import DeploymentError
from repro.workflow.model import Workflow

_HEADER = '''\
"""Auto-generated Chiron orchestrator for wrap {wrap!r} of workflow {wf!r}.

Deployed as an OpenFaaS function (python3-flask template, of-watchdog HTTP
mode).  Do not edit: regenerate with OrchestratorGenerator.
"""

import concurrent.futures
import multiprocessing
import threading

from repro.localexec.executor import call_function, invoke_wrap, set_affinity

CPU_AFFINITY = {cores}
'''


class OrchestratorGenerator:
    """Emits per-wrap orchestrator source for a deployment plan."""

    def generate(self, workflow: Workflow, plan: DeploymentPlan
                 ) -> Dict[str, str]:
        """Return wrap name -> orchestrator source code."""
        plan.validate(workflow)
        sources = {}
        for index, wrap in enumerate(plan.wraps):
            sources[wrap.name] = self._wrap_source(workflow, plan, wrap, index)
        return sources

    def _wrap_source(self, workflow: Workflow, plan: DeploymentPlan,
                     wrap: Wrap, index: int) -> str:
        lines = [_HEADER.format(wrap=wrap.name, wf=workflow.name,
                                cores=list(range(plan.cores_for(wrap))))]
        if plan.pool_workers:
            lines.append(
                f"POOL = concurrent.futures.ProcessPoolExecutor("
                f"max_workers={plan.pool_workers})\n")

        body: list[str] = ["state = req"]
        for sa in wrap.stages:
            body.append(f"# ---- stage {sa.stage_index} ----")
            if index == 0 and plan.n_wraps > 1:
                peers = [w.name for w, _ in plan.stage_wraps(sa.stage_index)
                         if w.name != wrap.name]
                for k, peer in enumerate(peers, start=2):
                    body.append(
                        f"pending_{sa.stage_index}_{k} = "
                        f"invoke_wrap({peer!r}, state)  # RPC to wrap {k}")
            if plan.pool_workers:
                fn_list = ", ".join(repr(f) for f in sa.function_names)
                body.append(f"futures = [POOL.submit(call_function, f, state)"
                            f" for f in ({fn_list},)]")
                body.append("results = [f.result() for f in futures]")
            else:
                for p_idx, proc in enumerate(sa.processes):
                    fn_list = ", ".join(repr(f) for f in proc.functions)
                    if proc.mode is ExecMode.THREAD:
                        body.append(
                            f"threads_{sa.stage_index}_{p_idx} = "
                            f"[threading.Thread(target=call_function, "
                            f"args=(f, state)) for f in ({fn_list},)]")
                    else:
                        body.append(
                            f"proc_{sa.stage_index}_{p_idx} = "
                            f"multiprocessing.Process(target=call_function, "
                            f"args=(({fn_list},), state))")
            body.append(f"state = join_stage_{sa.stage_index}(state)")
        body.append("return state")

        lines.append("def handle(req):")
        lines.append(textwrap.indent("\n".join(body), "    "))
        lines.append("")
        for sa in wrap.stages:
            lines.append(f"def join_stage_{sa.stage_index}(state):")
            lines.append("    # started processes/threads are joined and the\n"
                         "    # merged intermediate state is returned\n"
                         "    return state\n")
        lines.append("set_affinity(CPU_AFFINITY)")
        return "\n".join(lines)

    @staticmethod
    def deployment_manifest(workflow: Workflow,
                            plan: DeploymentPlan) -> Dict[str, object]:
        """An OpenFaaS ``stack.yml``-like manifest (as a dict) for the plan."""
        plan.validate(workflow)
        functions = {}
        for wrap in plan.wraps:
            functions[wrap.name] = {
                "lang": "python3-flask",
                "handler": f"./{wrap.name}",
                "image": f"chiron/{workflow.name}-{wrap.name}:latest",
                "limits": {"cpu": str(plan.cores_for(wrap))},
                "environment": {
                    "WRAP_FUNCTIONS": ",".join(wrap.function_names),
                    "POOL_WORKERS": str(plan.pool_workers),
                },
            }
        return {"provider": {"name": "openfaas"}, "functions": functions}
