"""The Profiler: strace-based extraction of function behaviour (§3.2).

The paper's Profiler runs each function solo under ``strace``, records every
blocking syscall's start timestamp and duration, treats everything else as
CPU time, and finally *scales the block periods down* so the reconstructed
profile matches the function's untraced latency (strace inflates syscall
cost).

Here the "machine" is simulated, so the profiler reproduces the same data
flow: it synthesizes an strace log from a solo run of the function's
ground-truth behaviour, *inflated* by a tracing-overhead factor and optional
measurement noise, then reconstructs a :class:`FunctionBehavior` with the
paper's correction step.  Prediction error in Figure 12 therefore includes
genuine profiling error, exactly as on the testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.errors import ProfilingError
from repro.workflow.behavior import FunctionBehavior, SegmentKind
from repro.workflow.model import FunctionSpec, Workflow

#: blocking syscalls the paper lists (§3.2); cycled through when
#: synthesizing logs so the log looks like real strace output.
BLOCK_SYSCALLS = ("select", "poll", "read", "write", "sendto", "recvfrom",
                  "open", "epoll_wait")


@dataclass(frozen=True)
class SyscallRecord:
    """One strace line: timestamp, syscall name, duration."""

    start_ms: float
    name: str
    duration_ms: float


@dataclass(frozen=True)
class StraceLog:
    """A complete solo-run trace of one function."""

    function: str
    records: tuple[SyscallRecord, ...]
    #: wall-clock latency of the *traced* run
    traced_latency_ms: float
    #: wall-clock latency of a run without strace (used for correction)
    untraced_latency_ms: float


@dataclass(frozen=True)
class FunctionProfile:
    """Profiler output for one function."""

    name: str
    behavior: FunctionBehavior
    solo_latency_ms: float
    files_written: frozenset[str] = frozenset()


class Profiler:
    """Synthesizes strace logs from solo runs and reconstructs behaviours.

    ``strace_overhead`` inflates blocking-syscall durations in the log
    (tracing cost); ``noise_sigma`` adds lognormal measurement jitter.  Both
    default to realistic small values; set them to 0/0 for an exact oracle.
    """

    def __init__(self, *, strace_overhead: float = 0.12,
                 noise_sigma: float = 0.02,
                 seed: int = 0) -> None:
        if strace_overhead < 0 or noise_sigma < 0:
            raise ProfilingError("overhead/noise must be >= 0")
        self.strace_overhead = strace_overhead
        self.noise_sigma = noise_sigma
        self._rng = np.random.default_rng(seed)

    # -- step 1: run under strace (simulated) --------------------------------
    def trace(self, fn: FunctionSpec) -> StraceLog:
        """Solo-run ``fn`` under simulated strace."""
        records: list[SyscallRecord] = []
        t = 0.0
        syscall_idx = 0
        noise = lambda: float(self._rng.lognormal(0.0, self.noise_sigma)) \
            if self.noise_sigma > 0 else 1.0
        for segment in fn.behavior:
            duration = segment.duration_ms * noise()
            if segment.kind is SegmentKind.IO:
                traced = duration * (1.0 + self.strace_overhead)
                records.append(SyscallRecord(
                    start_ms=t,
                    name=BLOCK_SYSCALLS[syscall_idx % len(BLOCK_SYSCALLS)],
                    duration_ms=traced))
                syscall_idx += 1
                t += traced
            else:
                t += duration
        untraced = fn.behavior.solo_ms * noise()
        return StraceLog(function=fn.name, records=tuple(records),
                         traced_latency_ms=t, untraced_latency_ms=untraced)

    # -- step 2: reconstruct behaviour with the correction step ---------------
    def reconstruct(self, log: StraceLog) -> FunctionProfile:
        """Build a behaviour from an strace log.

        Mirrors §3.2: strace only inflates *syscalls*, so block periods are
        scaled down by the factor that makes the reconstructed total match
        the untraced latency while CPU gaps stay untouched.  With zero noise
        this inverts the tracing overhead exactly.
        """
        if log.traced_latency_ms <= 0:
            raise ProfilingError(f"empty trace for {log.function!r}")
        traced_io = sum(rec.duration_ms for rec in log.records)
        traced_cpu = log.traced_latency_ms - traced_io
        if traced_io > 0:
            scale = max(0.0, (log.untraced_latency_ms - traced_cpu) / traced_io)
        else:
            scale = 1.0
        periods = []
        cursor_traced = 0.0   # position in the traced timeline
        cursor = 0.0          # position in the corrected timeline
        for rec in log.records:
            cpu_gap = rec.start_ms - cursor_traced
            start = cursor + cpu_gap
            duration = rec.duration_ms * scale
            periods.append((start, start + duration))
            cursor = start + duration
            cursor_traced = rec.start_ms + rec.duration_ms
        total = max(log.untraced_latency_ms, cursor)
        behavior = FunctionBehavior.from_block_periods(total, periods)
        return FunctionProfile(name=log.function, behavior=behavior,
                               solo_latency_ms=log.untraced_latency_ms)

    def profile(self, fn: FunctionSpec) -> FunctionProfile:
        """Trace + reconstruct one function, carrying file metadata along."""
        prof = self.reconstruct(self.trace(fn))
        return FunctionProfile(name=prof.name, behavior=prof.behavior,
                               solo_latency_ms=prof.solo_latency_ms,
                               files_written=fn.files_written)

    def profile_workflow(self, workflow: Workflow) -> Dict[str, FunctionProfile]:
        """Profile every function of a workflow solo (the Ê→Ë step)."""
        return {fn.name: self.profile(fn) for fn in workflow.functions}

    @staticmethod
    def profiled_workflow(workflow: Workflow,
                          profiles: Dict[str, FunctionProfile]) -> Workflow:
        """A copy of ``workflow`` whose behaviours are the *profiled* ones.

        The scheduler and predictor must consume profiled behaviours — not
        ground truth — so scheduling decisions inherit profiling error.
        """
        from repro.workflow.model import Stage

        missing = [f.name for f in workflow.functions if f.name not in profiles]
        if missing:
            raise ProfilingError(f"profiles missing for {missing}")
        return Workflow(workflow.name, (
            Stage(stage.name,
                  (fn.with_behavior(profiles[fn.name].behavior) for fn in stage))
            for stage in workflow.stages))
