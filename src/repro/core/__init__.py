"""Chiron's core: the wrap abstraction, Profiler, Predictor, PGP, Generator.

This package is the paper's contribution proper:

* :class:`Wrap` / :class:`DeploymentPlan` — the "m-to-n" deployment model's
  data model (§3.1): a workflow's functions partitioned into wraps, each
  wrap deployed into one sandbox, each function executed as a thread of some
  process of its wrap;
* :class:`Profiler` — extracts per-function CPU/block periods from
  (simulated) strace logs and corrects for tracing overhead (§3.2);
* :class:`LatencyPredictor` — the white-box end-to-end latency model,
  Eq. (1)-(4) plus the multi-thread GIL replay of Algorithm 1 (§3.3);
* :class:`PGPScheduler` — the prediction-guided graph partitioner,
  Algorithm 2 with its Kernighan-Lin swap pass (§3.4);
* :class:`OrchestratorGenerator` — emits the per-wrap orchestrator code the
  platform deploys as a "new function" (§3.1 step 4, §5);
* :mod:`repro.core.search` — the anytime plan search (simulated annealing +
  parallel portfolio) that refines PGP's greedy plan through the prediction
  cache (ROADMAP item 2);
* :class:`ChironManager` — the end-to-end pipeline gluing all of the above.
"""

from repro.core.adaptive import AdaptiveDeployer
from repro.core.controlplane import (
    CONTROLPLANE_COUNTERS,
    CONTROLPLANE_EVENT_TYPES,
    ControlAction,
    ControlPlaneConfig,
    DriftDetector,
    DriftSignal,
    MachineHealthConfig,
    MachineHealthMonitor,
    PlanLedger,
    RedeploymentControlPlane,
    breaker_brownout_hold,
)
from repro.core.dynamic import DynamicChironManager, DynamicChironPlatform
from repro.core.generator import OrchestratorGenerator
from repro.core.ha import (HA_COUNTERS, HA_EVENT_TYPES, HA_MODES, HAPolicy,
                           HASession, ha_adjusted_p99_ms)
from repro.core.manager import ChironManager
from repro.core.pgp import PGPOptions, PGPScheduler
from repro.core.predictor import PGP_COUNTERS, LatencyPredictor, PredictionCache
from repro.core.profiler import FunctionProfile, Profiler, StraceLog
from repro.core.search import (
    SEARCH_COUNTERS,
    SEARCH_EVENT_TYPES,
    MoveRecord,
    SearchOptions,
    SearchResult,
    plan_cost,
    refine_plan,
)
from repro.core.serialize import plan_from_json, plan_to_json
from repro.core.slo import SloPolicy
from repro.core.wrap import (
    DeploymentPlan,
    ExecMode,
    ProcessAssignment,
    StageAssignment,
    Wrap,
)

__all__ = [
    "MachineHealthConfig",
    "MachineHealthMonitor",
    "HA_COUNTERS",
    "HA_EVENT_TYPES",
    "HA_MODES",
    "HAPolicy",
    "HASession",
    "ha_adjusted_p99_ms",
    "AdaptiveDeployer",
    "CONTROLPLANE_COUNTERS",
    "CONTROLPLANE_EVENT_TYPES",
    "ChironManager",
    "ControlAction",
    "ControlPlaneConfig",
    "DeploymentPlan",
    "DriftDetector",
    "DriftSignal",
    "PlanLedger",
    "RedeploymentControlPlane",
    "breaker_brownout_hold",
    "DynamicChironManager",
    "DynamicChironPlatform",
    "ExecMode",
    "FunctionProfile",
    "LatencyPredictor",
    "OrchestratorGenerator",
    "PGPOptions",
    "PGPScheduler",
    "PGP_COUNTERS",
    "PredictionCache",
    "ProcessAssignment",
    "Profiler",
    "MoveRecord",
    "SEARCH_COUNTERS",
    "SEARCH_EVENT_TYPES",
    "SearchOptions",
    "SearchResult",
    "SloPolicy",
    "StageAssignment",
    "StraceLog",
    "Wrap",
    "plan_cost",
    "plan_from_json",
    "plan_to_json",
    "refine_plan",
]
