"""Chiron for dynamic DAGs (extension; §7's open scenario 2).

Strategy: plan every branch variant independently with PGP (each variant is
a static workflow), deploy the union of wraps, and route each request to
its branch's plan after the switch decision.  Resource accounting is
conservative — all variants' wraps stay provisioned — which is exactly the
trade-off the paper flags as future work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from repro.calibration import RuntimeCalibration
from repro.core.manager import ChironManager
from repro.core.wrap import DeploymentPlan
from repro.errors import DeploymentError
from repro.workflow.dynamic import BranchSelector, DynamicWorkflow

if TYPE_CHECKING:  # pragma: no cover - avoids a core <-> platforms cycle
    from repro.platforms.base import RequestResult
    from repro.platforms.chiron import ChironPlatform


@dataclass
class DynamicDeployment:
    """Per-branch plans plus the shared routing metadata."""

    workflow: DynamicWorkflow
    plans: Dict[str, DeploymentPlan]
    slo_ms: float

    @property
    def total_cores(self) -> int:
        """Conservatively provisioned CPUs (all variants resident)."""
        return sum(plan.total_cores for plan in self.plans.values())

    @property
    def worst_predicted_ms(self) -> float:
        return max(plan.predicted_latency_ms or 0.0
                   for plan in self.plans.values())


class DynamicChironManager:
    """Plans every branch of a dynamic workflow against one SLO.

    Branch variants share the stages before and after the switch, so
    planning them through one :class:`ChironManager` (one prediction cache)
    pays the full Algorithm-1 cost only for the stages that differ.
    """

    def __init__(self, manager: Optional[ChironManager] = None) -> None:
        self.manager = manager or ChironManager()

    def deploy(self, workflow: DynamicWorkflow,
               slo_ms: float) -> DynamicDeployment:
        plans = {name: self.manager.plan(variant, slo_ms)
                 for name, variant in workflow.variants().items()}
        return DynamicDeployment(workflow=workflow, plans=plans,
                                 slo_ms=slo_ms)

    def refresh(self, deployment: DynamicDeployment,
                slo_ms: Optional[float] = None, *,
                workflow: Optional[DynamicWorkflow] = None
                ) -> DynamicDeployment:
        """Re-plan every branch variant against drifted behaviours.

        The §3.4 periodic update for dynamic DAGs: ``workflow`` carries the
        currently observed behaviours (defaults to the deployed ones).
        Branch variants share the stages before and after the switch, and
        the underlying :class:`ChironManager` keeps one prediction cache
        across deploys — so a refresh where only one branch's functions
        drifted pays full Algorithm-1 cost only for that branch's changed
        stages.  Raises :class:`~repro.errors.DeploymentError` when the
        drifted workflow's branch set no longer matches the deployment
        (the union-of-wraps routing would dangle).
        """
        wf = workflow if workflow is not None else deployment.workflow
        target = slo_ms if slo_ms is not None else deployment.slo_ms
        if set(wf.variants()) != set(deployment.workflow.variants()):
            raise DeploymentError(
                "refresh cannot add or remove branches: deployed "
                f"{sorted(deployment.workflow.variants())}, got "
                f"{sorted(wf.variants())}")
        return self.deploy(wf, target)


class DynamicChironPlatform:
    """Routes requests to the branch decided at the switch.

    The branch decision is made by ``selector(state)`` — in production this
    is the switch function's output; here it is injectable (commonly a
    :func:`repro.workflow.dynamic.probabilistic_selector`).
    """

    name = "chiron-dynamic"

    def __init__(self, deployment: DynamicDeployment,
                 selector: BranchSelector,
                 cal: Optional[RuntimeCalibration] = None) -> None:
        from repro.platforms.chiron import ChironPlatform

        self.deployment = deployment
        self.selector = selector
        self.cal = cal or RuntimeCalibration.native()
        self._platforms = {
            name: ChironPlatform(plan, self.cal, name=f"chiron#{name}")
            for name, plan in deployment.plans.items()}
        self._variants = deployment.workflow.variants()
        #: branch -> number of requests routed there (metrics)
        self.routed: Dict[str, int] = {name: 0 for name in self._platforms}

    def run(self, state: object = None, *, seed: Optional[int] = None,
            branch: Optional[str] = None) -> "RequestResult":
        """One request; ``branch`` overrides the selector when given."""
        chosen = branch if branch is not None else self.selector(state)
        if chosen not in self._platforms:
            raise DeploymentError(f"selector chose unknown branch {chosen!r}")
        self.routed[chosen] += 1
        return self._platforms[chosen].run(self._variants[chosen], seed=seed)

    def branch_platform(self, name: str) -> "ChironPlatform":
        try:
            return self._platforms[name]
        except KeyError:
            raise DeploymentError(f"unknown branch {name!r}") from None
