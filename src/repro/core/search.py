"""Anytime plan search: simulated annealing + portfolio over the prediction
cache (ROADMAP item 2).

The paper's Algorithm 2 stops at greedy Kernighan-Lin refinement because it
was designed for *expensive* plan evaluation.  The content-addressed
:class:`~repro.core.predictor.PredictionCache` changed that economy: a plan
that differs from an already-evaluated one in a single stage costs one stage
re-simulation (``pgp.evals.delta``), not a full Algorithm-1 replay of the
workflow.  This module spends that budget on a real search:

* :func:`anneal` — simulated annealing over deployment plans with a typed
  move set (**swap** a function between process groups, **split** a wrap or a
  group, **merge** two wraps or two groups, **flip** a group between forked
  process and orchestrator thread, **retrim** a wrap's cpuset).  Every move
  touches a known set of stages, so candidate costs are *delta-costed*: only
  the touched stages are re-predicted (through the shared per-stage cache)
  and the workflow total is re-summed in stage order — bit-identical to a
  from-scratch :meth:`~repro.core.predictor.LatencyPredictor.predict_workflow`
  of the mutated plan, which ``verify_deltas=True`` enforces eagerly.

* **Anytime semantics** — the search keeps a *best-so-far* plan that is
  always structurally valid and annotated with its (SLO-checked) predicted
  latency.  Quality is monotone in budget: with a fixed per-move cooling
  factor the trajectory of a long run is a strict prefix-extension of a
  short run with the same seed, so ``best_cost(budget=b)`` is non-increasing
  in ``b`` and a deadline can cut the run at any point.

* :func:`portfolio` — races the greedy-KL seed, SA from that seed, and SA
  from random restarts in a thread pool sharing one prediction cache, and
  keeps the winner (ties go to the earlier arm, so the portfolio is *never*
  worse than plain KL).

Determinism: all randomness flows from ``random.Random(options.seed)``; the
same seed and budget reproduce the identical move trace and plan bit for
bit.  Search cost is scored by :func:`plan_cost` — total allocated cores
with a sub-core latency tie-break, plus a large penalty when the prediction
misses the SLO — so "better" means *fewer CPUs for a feasible plan* first
and lower latency second, matching PGP's objective.
"""

from __future__ import annotations

import dataclasses
import math
import random
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.predictor import LatencyPredictor
from repro.core.wrap import (
    DeploymentPlan,
    ExecMode,
    ProcessAssignment,
    StageAssignment,
    Wrap,
)
from repro.errors import DeploymentError, SchedulingError
from repro.workflow.model import Workflow

#: the typed move set (§move design above); order is part of the rng stream
MOVE_KINDS = ("swap", "split", "merge", "flip", "retrim")

#: every counter the plan search increments (pinned by the golden-trace
#: schema, mirroring ``repro.core.predictor.PGP_COUNTERS``)
SEARCH_COUNTERS = (
    "search.moves.proposed",
    "search.moves.accepted",
    "search.moves.rejected",
    "search.moves.pruned",
    "search.moves.invalid",
    "search.best.updates",
    "search.restarts",
    "search.portfolio.arms",
)

#: every typed event the plan search can emit (also schema-pinned)
SEARCH_EVENT_TYPES = (
    "search.start",
    "search.best",
    "search.done",
    "search.portfolio.winner",
)


def plan_cost(predicted_ms: float, total_cores: int, slo_ms: float, *,
              latency_weight: float = 0.999,
              infeasible_penalty: float = 1000.0) -> float:
    """Scalar search objective: cores first, latency as a sub-core tie-break.

    Feasible plans score ``cores + latency_weight * predicted/slo`` — the
    latency term stays below one core, so the search never trades a whole
    CPU for a latency nicety.  Infeasible plans score
    ``cores + infeasible_penalty * predicted/slo``: far above any feasible
    plan (the penalty dwarfs realistic core counts) yet still *graded*, so
    annealing in best-effort territory keeps a gradient toward the SLO.
    """
    if slo_ms <= 0:
        raise SchedulingError(f"SLO must be > 0, got {slo_ms}")
    frac = predicted_ms / slo_ms
    if predicted_ms <= slo_ms:
        return total_cores + latency_weight * frac
    return total_cores + infeasible_penalty * frac


@dataclass(frozen=True)
class SearchOptions:
    """Knobs of the anytime plan search (all defaults deterministic)."""

    #: "sa" anneals from the KL seed; "portfolio" additionally races the
    #: seed itself and random restarts and keeps the winner.
    method: str = "sa"
    #: move-evaluation budget; 0 degrades gracefully to the seed plan.
    budget: int = 1500
    #: optional wall-clock deadline (ms) — the anytime cut; determinism
    #: holds only for runs the budget terminates, not the deadline.
    deadline_ms: Optional[float] = None
    #: seeds the move/accept rng; same seed + budget => identical trace.
    seed: int = 0
    #: random-restart arms raced by the portfolio.
    restarts: int = 2
    #: portfolio thread-pool width (None: one thread per arm, capped at 4).
    threads: Optional[int] = None
    #: initial temperature (None: 6% of the seed cost, floor 0.5).
    t0: Optional[float] = None
    #: fixed per-move geometric cooling — budget-independent, so longer
    #: runs extend shorter ones move for move (the anytime guarantee).
    cooling: float = 0.995
    #: temperature floor (hill-climbing regime).
    t_floor: float = 1e-4
    #: after this many evaluations without a new best, teleport the walk
    #: back to the best-so-far plan (cooling continues).  Depends only on
    #: trajectory history, so budget-prefix consistency is preserved.
    stall: int = 150
    latency_weight: float = 0.999
    infeasible_penalty: float = 1000.0
    #: recompute every delta-costed candidate with a cache-disabled
    #: predictor and raise on the slightest disagreement (bit-identity).
    verify_deltas: bool = False

    def __post_init__(self) -> None:
        if self.method not in ("sa", "portfolio"):
            raise SchedulingError(f"unknown search method {self.method!r}; "
                                  f"expected 'sa' or 'portfolio'")
        if self.budget < 0:
            raise SchedulingError(f"budget must be >= 0, got {self.budget}")
        if not 0.0 < self.cooling <= 1.0:
            raise SchedulingError(f"cooling must be in (0, 1], "
                                  f"got {self.cooling}")
        if self.restarts < 0:
            raise SchedulingError(f"restarts must be >= 0, "
                                  f"got {self.restarts}")

    @staticmethod
    def coerce(value: Union[None, str, "SearchOptions"]
               ) -> Optional["SearchOptions"]:
        """Normalize the ``search=`` option: None/"none"/"kl" disable the
        search, "sa"/"portfolio" pick a method with defaults, and a
        :class:`SearchOptions` passes through."""
        if value is None or isinstance(value, SearchOptions):
            return value
        if isinstance(value, str):
            if value in ("none", "kl", ""):
                return None
            if value in ("sa", "portfolio"):
                return SearchOptions(method=value)
        raise SchedulingError(
            f"unknown search= option {value!r}; expected None, 'none', "
            f"'kl', 'sa', 'portfolio' or a SearchOptions")


@dataclass(frozen=True)
class MoveRecord:
    """One evaluated move of the annealing trace (deterministic per seed)."""

    index: int            # 1-based evaluation number
    kind: str             # one of MOVE_KINDS
    detail: tuple         # move-specific identifying data
    temperature: float
    delta: float          # candidate cost - current cost
    accepted: bool
    cost: float           # current cost after the accept/reject decision
    best_cost: float


@dataclass
class SearchResult:
    """Outcome of one search run (or the portfolio winner)."""

    plan: DeploymentPlan          # best-so-far, validated + SLO-annotated
    cost: float
    seed_cost: float
    feasible: bool
    method: str                   # "sa", "kl", "portfolio", "restart-N"
    evaluations: int
    accepted: int
    moves: List[MoveRecord] = field(default_factory=list)
    #: (evaluations-done, best-cost) pairs; non-increasing in cost
    timeline: List[Tuple[int, float]] = field(default_factory=list)
    #: portfolio only: winning arm name and per-arm final costs
    winner: Optional[str] = None
    arms: Optional[Dict[str, float]] = None
    #: verify_deltas only: per-move-kind count of bit-verified delta costs
    delta_verified: Optional[Dict[str, int]] = None


# ---------------------------------------------------------------------------
# mutable plan state
# ---------------------------------------------------------------------------
class _Group:
    """One process group of a wrap-stage, mutable for move application."""

    __slots__ = ("functions", "mode")

    def __init__(self, functions: Sequence[str], mode: ExecMode) -> None:
        self.functions = list(functions)
        self.mode = mode


class _MWrap:
    """Mutable wrap: ``stages`` maps stage index -> ordered group list."""

    __slots__ = ("name", "stages", "cores", "frozen")

    def __init__(self, name: str, stages: Dict[int, List[_Group]],
                 cores: int, frozen: bool) -> None:
        self.name = name
        self.stages = stages
        self.cores = cores
        self.frozen = frozen

    @property
    def n_groups(self) -> int:
        return sum(len(gs) for gs in self.stages.values())

    def needed_cores(self) -> int:
        """Mirror of :attr:`repro.core.wrap.Wrap.max_concurrent_processes`."""
        peak = 1
        for groups in self.stages.values():
            forked = sum(1 for g in groups if g.mode is ExecMode.PROCESS)
            threads = 1 if any(g.mode is ExecMode.THREAD for g in groups) \
                else 0
            peak = max(peak, forked + threads)
        return peak


#: sentinel returned by a proposer for a provably-no-gain candidate
_PRUNED = object()


class _PlanState:
    """A deployment plan decomposed for in-place move application.

    Wrap order is preserved exactly through decompose -> rebuild (sibling
    order decides invocation/RPC shifts, so it is part of every stage
    fingerprint).  Wraps containing conflicted functions are *frozen*: the
    remaining functions are mutually sandbox-compatible (PGP pins a vertex
    cover), so no move can ever create a conflict.
    """

    def __init__(self, workflow: Workflow, plan: DeploymentPlan,
                 slo_ms: float, predictor: LatencyPredictor,
                 conflicted: Set[str]) -> None:
        self.workflow = workflow
        self.predictor = predictor
        self.slo_ms = slo_ms
        self.n_stages = len(workflow.stages)
        self.pool_workers = plan.pool_workers
        self.wraps: List[_MWrap] = []
        # continue fresh-wrap numbering past any wrap-saN already in the
        # plan (the stall teleport re-decomposes a plan that has them)
        self._fresh = 0
        for wrap in plan.wraps:
            if wrap.name.startswith("wrap-sa"):
                suffix = wrap.name[7:]
                if suffix.isdigit():
                    self._fresh = max(self._fresh, int(suffix))
        for wrap in plan.wraps:
            frozen = any(name in conflicted for name in wrap.function_names)
            stages = {
                sa.stage_index: [_Group(p.functions, p.mode)
                                 for p in sa.processes]
                for sa in wrap.stages}
            self.wraps.append(_MWrap(wrap.name, stages,
                                     plan.cores_for(wrap), frozen))
        #: per-stage predicted latency; refreshed move by move
        self.stage_values: List[float] = [0.0] * self.n_stages
        #: behaviour fingerprint per function (swap-prune test)
        self._bfp = {f.name: f.behavior.fingerprint()
                     for f in workflow.functions}

    # -- views ----------------------------------------------------------------
    @property
    def mutable(self) -> List[int]:
        return [i for i, w in enumerate(self.wraps) if not w.frozen]

    @property
    def total_cores(self) -> int:
        return sum(w.cores for w in self.wraps)

    def total_ms(self) -> float:
        """Sum the per-stage values exactly like ``predict_workflow`` does
        (left to right, then the conservatism factor) — bit-identical."""
        total = 0.0
        for value in self.stage_values:
            total += value
        return total * self.predictor.conservatism

    def to_plan(self, predicted: Optional[float] = None) -> DeploymentPlan:
        wraps = []
        cores: Dict[str, int] = {}
        for mw in self.wraps:
            stages = tuple(
                StageAssignment(stage_index=i, processes=tuple(
                    ProcessAssignment(functions=tuple(g.functions),
                                      mode=g.mode)
                    for g in groups))
                for i, groups in sorted(mw.stages.items()))
            wraps.append(Wrap(name=mw.name, stages=stages))
            cores[mw.name] = mw.cores
        return DeploymentPlan(workflow_name=self.workflow.name,
                              wraps=tuple(wraps), cores=cores,
                              pool_workers=self.pool_workers,
                              predicted_latency_ms=predicted,
                              slo_ms=self.slo_ms)

    def refresh_stages(self, plan: DeploymentPlan,
                       stages: Sequence[int]) -> None:
        for i in stages:
            self.stage_values[i] = self.predictor.predict_stage(
                plan, self.workflow, i)

    def refresh_all(self) -> DeploymentPlan:
        plan = self.to_plan()
        self.refresh_stages(plan, range(self.n_stages))
        return plan

    # -- move proposal ---------------------------------------------------------
    def propose(self, kind: str, rng: random.Random):
        """One candidate move of ``kind``: ``None`` if structurally
        impossible, :data:`_PRUNED` if provably cost-neutral, else
        ``(detail, affected_stages, undo)`` with the move already applied."""
        return getattr(self, f"_propose_{kind}")(rng)

    def _stage_groups(self, i: int) -> List[Tuple[int, int]]:
        """(wrap index, group index) pairs of stage ``i``, mutable only."""
        out = []
        for wi in self.mutable:
            for gi in range(len(self.wraps[wi].stages.get(i, ()))):
                out.append((wi, gi))
        return out

    def _propose_swap(self, rng: random.Random):
        """Exchange two functions of one stage — across groups (the classic
        KL-style move) or *within* a group (a transposition of the GIL
        replay order, which Algorithm 1 is sensitive to and the KL seed
        never explores)."""
        slots_by_stage: List[List[Tuple[int, int, int]]] = []
        stages = []
        for i in range(self.n_stages):
            slots = [(wi, gi, fi)
                     for wi, gi in self._stage_groups(i)
                     for fi in range(
                         len(self.wraps[wi].stages[i][gi].functions))]
            if len(slots) >= 2:
                stages.append(i)
                slots_by_stage.append(slots)
        if not stages:
            return None
        pick = rng.randrange(len(stages))
        i, slots = stages[pick], slots_by_stage[pick]
        a = rng.randrange(len(slots))
        b = rng.randrange(len(slots) - 1)
        if b >= a:
            b += 1
        wa, ga, xi = slots[a]
        wb, gb, yi = slots[b]
        grp_a = self.wraps[wa].stages[i][ga]
        grp_b = self.wraps[wb].stages[i][gb]
        x, y = grp_a.functions[xi], grp_b.functions[yi]
        if self._bfp[x] == self._bfp[y]:
            # equal-behaviour swap: every touched stage fingerprint is
            # unchanged, the candidate cannot move the cost
            return _PRUNED
        grp_a.functions[xi], grp_b.functions[yi] = y, x

        def undo() -> None:
            grp_a.functions[xi], grp_b.functions[yi] = x, y

        return (i, "swap", x, y), {i}, undo

    def _propose_split(self, rng: random.Random):
        if rng.random() < 0.5:
            move = self._propose_wrap_split(rng)
            return move if move is not None else self._propose_group_split(rng)
        move = self._propose_group_split(rng)
        return move if move is not None else self._propose_wrap_split(rng)

    def _propose_wrap_split(self, rng: random.Random):
        """Relocate one process group into a fresh single-group wrap."""
        donors = [wi for wi in self.mutable if self.wraps[wi].n_groups >= 2]
        if not donors:
            return None
        wi = donors[rng.randrange(len(donors))]
        mw = self.wraps[wi]
        slots = [(i, gi) for i, gs in sorted(mw.stages.items())
                 for gi in range(len(gs))]
        i, gi = slots[rng.randrange(len(slots))]
        group = mw.stages[i].pop(gi)
        emptied = not mw.stages[i]
        if emptied:
            del mw.stages[i]
        old_mode = group.mode
        group.mode = ExecMode.THREAD  # it orchestrates its new sandbox
        self._fresh += 1
        fresh = _MWrap(f"wrap-sa{self._fresh}", {i: [group]}, cores=1,
                       frozen=False)
        self.wraps.append(fresh)

        def undo() -> None:
            self.wraps.remove(fresh)
            group.mode = old_mode
            if emptied:
                mw.stages[i] = [group]
            else:
                mw.stages[i].insert(gi, group)

        return (i, "wrap-split", mw.name, tuple(group.functions)), {i}, undo

    def _propose_group_split(self, rng: random.Random):
        """Divide a multi-function group into two groups of its wrap."""
        slots = [(wi, i, gi)
                 for wi in self.mutable
                 for i, gs in sorted(self.wraps[wi].stages.items())
                 for gi, g in enumerate(gs) if len(g.functions) >= 2]
        if not slots:
            return None
        wi, i, gi = slots[rng.randrange(len(slots))]
        group = self.wraps[wi].stages[i][gi]
        cut = rng.randrange(1, len(group.functions))
        tail = group.functions[cut:]
        del group.functions[cut:]
        new = _Group(tail, ExecMode.PROCESS)
        self.wraps[wi].stages[i].insert(gi + 1, new)

        def undo() -> None:
            self.wraps[wi].stages[i].remove(new)
            group.functions.extend(tail)

        return (i, "group-split", self.wraps[wi].name, tuple(tail)), {i}, undo

    def _propose_merge(self, rng: random.Random):
        if rng.random() < 0.5:
            move = self._propose_wrap_merge(rng)
            return move if move is not None else self._propose_group_merge(rng)
        move = self._propose_group_merge(rng)
        return move if move is not None else self._propose_wrap_merge(rng)

    def _propose_wrap_merge(self, rng: random.Random):
        """Fold one mutable wrap's stage shares into another, drop it."""
        mutable = self.mutable
        if len(mutable) < 2:
            return None
        ai = mutable[rng.randrange(len(mutable))]
        others = [wi for wi in mutable if wi != ai]
        bi = others[rng.randrange(len(others))]
        a, b = self.wraps[ai], self.wraps[bi]
        b_index = self.wraps.index(b)
        appended: List[Tuple[int, int]] = []
        for i, groups in sorted(b.stages.items()):
            dst = a.stages.setdefault(i, [])
            appended.append((i, len(groups)))
            dst.extend(groups)
        old_cores = a.cores
        a.cores = max(a.cores, b.cores)
        self.wraps.remove(b)
        affected = set(a.stages)  # a's cores changed: every stage of a ∪ b

        def undo() -> None:
            self.wraps.insert(b_index, b)
            a.cores = old_cores
            for i, count in appended:
                del a.stages[i][-count:]
                if not a.stages[i]:
                    del a.stages[i]

        return (-1, "wrap-merge", a.name, b.name), affected, undo

    def _propose_group_merge(self, rng: random.Random):
        """Concatenate two sibling groups of one wrap-stage.

        Any ordered pair, not just adjacent ones: split at ``k`` followed by
        a reversed merge rotates a thread group, so compositions of split +
        merge reach every intra-group execution order — which matters,
        because GIL replay is order-sensitive and the KL seed never explores
        orderings.
        """
        slots = [(wi, i)
                 for wi in self.mutable
                 for i, gs in sorted(self.wraps[wi].stages.items())
                 if len(gs) >= 2]
        if not slots:
            return None
        wi, i = slots[rng.randrange(len(slots))]
        groups = self.wraps[wi].stages[i]
        ki = rng.randrange(len(groups))
        di = rng.randrange(len(groups) - 1)
        if di >= ki:
            di += 1
        keep, gone = groups[ki], groups[di]
        tail_len = len(gone.functions)
        keep.functions.extend(gone.functions)
        groups.remove(gone)

        def undo() -> None:
            del keep.functions[-tail_len:]
            groups.insert(di, gone)

        return (i, "group-merge", self.wraps[wi].name,
                tuple(gone.functions)), {i}, undo

    def _propose_flip(self, rng: random.Random):
        slots = [(wi, i, gi)
                 for wi in self.mutable
                 for i, gs in sorted(self.wraps[wi].stages.items())
                 for gi in range(len(gs))]
        if not slots:
            return None
        wi, i, gi = slots[rng.randrange(len(slots))]
        group = self.wraps[wi].stages[i][gi]
        old = group.mode
        group.mode = (ExecMode.PROCESS if old is ExecMode.THREAD
                      else ExecMode.THREAD)

        def undo() -> None:
            group.mode = old

        return (i, "flip", self.wraps[wi].name, old.value), {i}, undo

    def _propose_retrim(self, rng: random.Random):
        mutable = self.mutable
        if not mutable:
            return None
        wi = mutable[rng.randrange(len(mutable))]
        mw = self.wraps[wi]
        delta = -1 if rng.random() < 0.5 else 1
        new = mw.cores + delta
        if new < 1 or new > mw.needed_cores():
            return None  # out of the useful [1, peak-processes] band
        mw.cores = new

        def undo() -> None:
            mw.cores = new - delta

        return (-1, "retrim", mw.name, delta), set(mw.stages), undo


# ---------------------------------------------------------------------------
# seeds
# ---------------------------------------------------------------------------
def random_plan(workflow: Workflow, slo_ms: float, rng: random.Random, *,
                conflicted: Optional[Set[str]] = None) -> DeploymentPlan:
    """A structurally valid random deployment (a portfolio restart seed).

    Conflicted functions get the same dedicated solo wraps PGP pins, so the
    random shape never violates sandbox compatibility.
    """
    from repro.core.pgp import conflicted_functions

    if conflicted is None:
        conflicted = conflicted_functions(workflow)
    width = max((len([f for f in st if f.name not in conflicted])
                 for st in workflow.stages), default=0)
    n_wraps = rng.randint(1, max(1, width))
    buckets: List[Dict[int, List[ProcessAssignment]]] = [
        {} for _ in range(n_wraps)]
    for i, stage in enumerate(workflow.stages):
        names = [f.name for f in stage if f.name not in conflicted]
        if not names:
            continue
        rng.shuffle(names)
        n_groups = rng.randint(1, len(names))
        for j in range(n_groups):
            part = names[j::n_groups]
            if not part:
                continue
            mode = (ExecMode.THREAD if rng.random() < 0.5
                    else ExecMode.PROCESS)
            buckets[rng.randrange(n_wraps)].setdefault(i, []).append(
                ProcessAssignment(functions=tuple(part), mode=mode))
    wraps: List[Wrap] = []
    for idx, stages in enumerate(buckets):
        if not stages:
            continue
        wraps.append(Wrap(
            name=f"wrap-r{idx + 1}",
            stages=tuple(StageAssignment(stage_index=i, processes=tuple(ps))
                         for i, ps in sorted(stages.items()))))
    for name in sorted(conflicted):
        stage_idx = next(i for i, st in enumerate(workflow.stages)
                         if any(f.name == name for f in st))
        wraps.append(Wrap(
            name=f"wrap-solo-{name}",
            stages=(StageAssignment(
                stage_index=stage_idx,
                processes=(ProcessAssignment(functions=(name,),
                                             mode=ExecMode.THREAD),)),)))
    cores = {w.name: w.max_concurrent_processes for w in wraps}
    plan = DeploymentPlan(workflow_name=workflow.name, wraps=tuple(wraps),
                          cores=cores, slo_ms=slo_ms)
    plan.validate(workflow)
    return plan


def _reference_predictor(predictor: LatencyPredictor) -> LatencyPredictor:
    """A cache-disabled twin: every prediction is a full replay."""
    return LatencyPredictor(predictor.cal,
                            conservatism=predictor.conservatism,
                            gil_handoff=predictor.gil_handoff,
                            cache=False)


def _registry_for(predictor: LatencyPredictor, registry=None):
    if registry is not None:
        return registry
    if predictor.cache is not None:
        return predictor.cache.metrics
    from repro.obs.metrics import Registry

    return Registry()


# ---------------------------------------------------------------------------
# simulated annealing
# ---------------------------------------------------------------------------
def anneal(workflow: Workflow, seed_plan: DeploymentPlan, slo_ms: float,
           predictor: LatencyPredictor, options: SearchOptions, *,
           tracer=None, registry=None,
           on_visit: Optional[Callable[[DeploymentPlan], None]] = None,
           arm: str = "sa") -> SearchResult:
    """Anneal ``seed_plan`` under ``options``; return the best-so-far result.

    Counters land in ``registry`` (default: the prediction cache's metrics
    registry, so ``search.*`` sits beside ``pgp.*``); ``on_visit`` sees every
    *evaluated* candidate plan — the property-test hook.
    """
    from repro.core.pgp import conflicted_functions

    if tracer is None:
        from repro.obs.tracer import NULL_TRACER
        tracer = NULL_TRACER
    registry = _registry_for(predictor, registry)
    seed_plan.validate(workflow)
    conflicted = conflicted_functions(workflow)
    state = _PlanState(workflow, seed_plan, slo_ms, predictor, conflicted)
    rng = random.Random(options.seed)
    # Seed stage predictions come straight from the shared per-stage cache:
    # PGP already evaluated this exact plan, so these are hits, not replays.
    state.refresh_all()
    seed_total = state.total_ms()
    cost = plan_cost(seed_total, state.total_cores, slo_ms,
                     latency_weight=options.latency_weight,
                     infeasible_penalty=options.infeasible_penalty)
    best_cost = seed_cost = cost
    best_plan = dataclasses.replace(state.to_plan(),
                                    predicted_latency_ms=seed_total)
    timeline: List[Tuple[int, float]] = [(0, cost)]
    temperature = (options.t0 if options.t0 is not None
                   else max(0.5, 0.06 * abs(cost)))
    tracer.event("search.start", entity="search", method=arm,
                 budget=options.budget, seed=options.seed,
                 seed_cost=seed_cost)
    ref = _reference_predictor(predictor) if options.verify_deltas else None
    verified: Optional[Dict[str, int]] = (
        {k: 0 for k in MOVE_KINDS} if options.verify_deltas else None)
    moves: List[MoveRecord] = []
    evals = accepted_n = since_best = 0
    started = time.perf_counter()

    for _ in range(options.budget):
        if (options.deadline_ms is not None
                and (time.perf_counter() - started) * 1000.0
                >= options.deadline_ms):
            break
        if options.stall > 0 and since_best >= options.stall:
            # the walk wandered uphill and stayed there: teleport back to
            # the incumbent (a restart in plan space, cooling untouched)
            state = _PlanState(workflow, best_plan, slo_ms, predictor,
                               conflicted)
            state.refresh_all()
            cost = best_cost
            since_best = 0
        move = None
        for _attempt in range(24):
            kind = MOVE_KINDS[rng.randrange(len(MOVE_KINDS))]
            candidate = state.propose(kind, rng)
            if candidate is None:
                registry.inc("search.moves.invalid")
                continue
            if candidate is _PRUNED:
                registry.inc("search.moves.proposed")
                registry.inc("search.moves.pruned")
                continue
            move = (kind, candidate)
            break
        if move is None:
            break  # the move set is exhausted for this shape
        kind, (detail, affected, undo) = move
        affected = sorted(affected)
        old_values = [(i, state.stage_values[i]) for i in affected]
        plan = state.to_plan()
        state.refresh_stages(plan, affected)
        new_total = state.total_ms()
        new_cost = plan_cost(new_total, state.total_cores, slo_ms,
                             latency_weight=options.latency_weight,
                             infeasible_penalty=options.infeasible_penalty)
        evals += 1
        registry.inc("search.moves.proposed")
        registry.observe("search.temperature", temperature)
        if predictor.cache is not None:
            # a delta evaluation: untouched stages were reused wholesale
            predictor.cache.metrics.inc("pgp.evals.delta")
        if on_visit is not None:
            on_visit(plan)
        if ref is not None:
            full = ref.predict_workflow(workflow, plan)
            if full != new_total:
                raise DeploymentError(
                    f"delta-cost divergence on {kind} move {detail!r}: "
                    f"delta total {new_total!r} != full re-eval {full!r}")
            verified[kind] += 1
        delta = new_cost - cost
        accept = (delta <= 0.0
                  or rng.random() < math.exp(-delta
                                             / max(temperature,
                                                   options.t_floor)))
        since_best += 1
        if accept:
            cost = new_cost
            accepted_n += 1
            registry.inc("search.moves.accepted")
            if new_cost < best_cost - 1e-12:
                best_cost = new_cost
                best_plan = dataclasses.replace(
                    plan, predicted_latency_ms=new_total)
                best_plan.validate(workflow)
                timeline.append((evals, best_cost))
                since_best = 0
                registry.inc("search.best.updates")
                tracer.event("search.best", entity="search", cost=best_cost,
                             evals=evals, temperature=temperature)
        else:
            undo()
            for i, value in old_values:
                state.stage_values[i] = value
            registry.inc("search.moves.rejected")
        moves.append(MoveRecord(index=evals, kind=kind, detail=detail,
                                temperature=temperature, delta=delta,
                                accepted=accept, cost=cost,
                                best_cost=best_cost))
        temperature = max(temperature * options.cooling, options.t_floor)

    feasible = ((best_plan.predicted_latency_ms or float("inf")) <= slo_ms)
    tracer.event("search.done", entity="search", method=arm, evals=evals,
                 accepted=accepted_n, best_cost=best_cost, feasible=feasible)
    return SearchResult(plan=best_plan, cost=best_cost, seed_cost=seed_cost,
                        feasible=feasible, method=arm, evaluations=evals,
                        accepted=accepted_n, moves=moves, timeline=timeline,
                        delta_verified=verified)


# ---------------------------------------------------------------------------
# parallel portfolio
# ---------------------------------------------------------------------------
def portfolio(workflow: Workflow, seed_plan: DeploymentPlan, slo_ms: float,
              predictor: LatencyPredictor, options: SearchOptions, *,
              tracer=None, registry=None,
              on_visit: Optional[Callable[[DeploymentPlan], None]] = None
              ) -> SearchResult:
    """Race KL (the seed), SA, and random restarts; keep the winner.

    All arms share one prediction cache (its lock makes concurrent
    ``get_or_compute`` safe), so a stage evaluated by any arm is free for
    every other.  The winner is the lowest cost with ties broken by arm
    order — KL first — so the portfolio can never lose to plain KL.
    """
    from repro.core.pgp import conflicted_functions

    if tracer is None:
        from repro.obs.tracer import NULL_TRACER
        tracer = NULL_TRACER
    registry = _registry_for(predictor, registry)
    conflicted = conflicted_functions(workflow)
    sa_opts = dataclasses.replace(options, method="sa")

    def run_kl() -> SearchResult:
        return anneal(workflow, seed_plan, slo_ms, predictor,
                      dataclasses.replace(sa_opts, budget=0),
                      registry=registry, on_visit=on_visit, arm="kl")

    def run_sa() -> SearchResult:
        return anneal(workflow, seed_plan, slo_ms, predictor, sa_opts,
                      registry=registry, on_visit=on_visit, arm="sa")

    def run_restart(j: int) -> SearchResult:
        registry.inc("search.restarts")
        child_seed = options.seed * 10007 + 31 * (j + 1)
        start = random_plan(workflow, slo_ms, random.Random(child_seed),
                            conflicted=conflicted)
        return anneal(workflow, start, slo_ms, predictor,
                      dataclasses.replace(sa_opts, seed=child_seed + 1),
                      registry=registry, on_visit=on_visit,
                      arm=f"restart-{j}")

    arms: List[Tuple[str, Callable[[], SearchResult]]] = [
        ("kl", run_kl), ("sa", run_sa)]
    for j in range(options.restarts):
        arms.append((f"restart-{j}", lambda j=j: run_restart(j)))
    registry.inc("search.portfolio.arms", len(arms))
    # Arms run without the tracer (their counters still land in the shared
    # registry) so the caller's event stream stays deterministic under
    # thread interleaving; the portfolio emits its own start/done brackets.
    tracer.event("search.start", entity="search", method="portfolio",
                 budget=options.budget, seed=options.seed, arms=len(arms))
    workers = options.threads or min(4, len(arms))
    with ThreadPoolExecutor(max_workers=workers) as pool:
        results = list(pool.map(lambda a: a[1](), arms))

    winner_idx = min(range(len(results)),
                     key=lambda i: (results[i].cost, i))
    best = results[winner_idx]
    arm_costs = {name: r.cost for (name, _), r in zip(arms, results)}
    tracer.event("search.portfolio.winner", entity="search",
                 arm=arms[winner_idx][0], cost=best.cost)
    tracer.event("search.done", entity="search", method="portfolio",
                 evals=sum(r.evaluations for r in results),
                 best_cost=best.cost, feasible=best.feasible)
    return SearchResult(plan=best.plan, cost=best.cost,
                        seed_cost=results[0].cost, feasible=best.feasible,
                        method="portfolio", evaluations=sum(
                            r.evaluations for r in results),
                        accepted=sum(r.accepted for r in results),
                        moves=best.moves, timeline=best.timeline,
                        winner=arms[winner_idx][0], arms=arm_costs,
                        delta_verified=best.delta_verified)


def refine_plan(workflow: Workflow, plan: DeploymentPlan, slo_ms: float,
                predictor: LatencyPredictor,
                options: Union[str, SearchOptions], *, tracer=None,
                on_visit: Optional[Callable[[DeploymentPlan], None]] = None
                ) -> SearchResult:
    """Entry point: anneal (or race a portfolio) from ``plan`` as seed."""
    opts = SearchOptions.coerce(options)
    if opts is None:
        raise SchedulingError("refine_plan needs an enabled search option")
    if opts.method == "portfolio":
        return portfolio(workflow, plan, slo_ms, predictor, opts,
                         tracer=tracer, on_visit=on_visit)
    return anneal(workflow, plan, slo_ms, predictor, opts, tracer=tracer,
                  on_visit=on_visit)


def cost_at_budget(timeline: Sequence[Tuple[int, float]],
                   budget: int) -> float:
    """Best-so-far cost after ``budget`` evaluations (anytime read-off)."""
    best = timeline[0][1]
    for evals, cost in timeline:
        if evals > budget:
            break
        best = cost
    return best
