"""JSON (de)serialization of deployment plans.

Real Chiron persists its wrap decisions between the offline PGP run and the
online request path ("subsequent requests of the workflow can reuse these
wraps", §3.4); this codec gives plans a stable on-disk format so a planner
process and an executor process can be separate, and so tests can diff
plans structurally.
"""

from __future__ import annotations

import json
from typing import Any, Union

from repro.core.wrap import (
    DeploymentPlan,
    ExecMode,
    ProcessAssignment,
    StageAssignment,
    Wrap,
)
from repro.errors import DeploymentError

#: bumped on breaking layout changes
FORMAT_VERSION = 1


def plan_to_dict(plan: DeploymentPlan) -> dict[str, Any]:
    return {
        "version": FORMAT_VERSION,
        "workflow": plan.workflow_name,
        "pool_workers": plan.pool_workers,
        "predicted_latency_ms": plan.predicted_latency_ms,
        "slo_ms": plan.slo_ms,
        "cores": dict(plan.cores),
        "wraps": [
            {
                "name": wrap.name,
                "stages": [
                    {
                        "stage": sa.stage_index,
                        "processes": [
                            {"mode": p.mode.value,
                             "functions": list(p.functions)}
                            for p in sa.processes
                        ],
                    }
                    for sa in wrap.stages
                ],
            }
            for wrap in plan.wraps
        ],
    }


def plan_to_json(plan: DeploymentPlan, *, indent: int = 2) -> str:
    return json.dumps(plan_to_dict(plan), indent=indent)


def plan_from_dict(data: dict[str, Any]) -> DeploymentPlan:
    try:
        version = data["version"]
        if version != FORMAT_VERSION:
            raise DeploymentError(
                f"unsupported plan format version {version!r}")
        wraps = tuple(
            Wrap(
                name=w["name"],
                stages=tuple(
                    StageAssignment(
                        stage_index=int(sa["stage"]),
                        processes=tuple(
                            ProcessAssignment(
                                functions=tuple(p["functions"]),
                                mode=ExecMode(p["mode"]))
                            for p in sa["processes"]))
                    for sa in w["stages"]))
            for w in data["wraps"])
        return DeploymentPlan(
            workflow_name=data["workflow"],
            wraps=wraps,
            cores={k: int(v) for k, v in data.get("cores", {}).items()},
            pool_workers=int(data.get("pool_workers", 0)),
            predicted_latency_ms=data.get("predicted_latency_ms"),
            slo_ms=data.get("slo_ms"),
        )
    except DeploymentError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise DeploymentError(f"malformed plan document: {exc}") from exc


def plan_from_json(text: Union[str, bytes]) -> DeploymentPlan:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise DeploymentError(f"plan is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise DeploymentError("plan document must be a JSON object")
    return plan_from_dict(data)
