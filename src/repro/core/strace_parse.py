"""Parse real ``strace`` output into profiler records (§3.2, Figure 10).

The paper's Profiler invokes ``strace`` via ``subprocess`` and reads its
log.  This module understands the ``strace -ttt -T`` line format::

    1690000000.123456 select(4, [3], NULL, NULL, {tv_sec=1, tv_usec=0}) = 0 <1.001234>
    1690000000.456789 write(5, "1", 1) = 1 <0.000042>
    1690000001.000000 exit_group(0)     = ?

* the leading float is the absolute start timestamp (seconds),
* the trailing ``<...>`` is the syscall's duration (seconds),
* unfinished/resumed pairs (``<unfinished ...>`` / ``<... select resumed>``)
  are joined,
* only *blocking* syscalls (the §3.2 list: open/read/write/poll/select/
  sendto/recvfrom/epoll_wait/...) count as block periods; everything else
  is CPU time.

The inverse, :func:`format_strace`, renders a synthetic log in the same
format so the parser can be exercised without a live strace binary.
"""

from __future__ import annotations

import re
from typing import Iterable, Optional

from repro.core.profiler import BLOCK_SYSCALLS, StraceLog, SyscallRecord
from repro.errors import ProfilingError

#: syscalls treated as blocking (superset of the paper's examples)
BLOCKING_SYSCALLS = frozenset(BLOCK_SYSCALLS) | frozenset({
    "pselect6", "ppoll", "epoll_pwait", "accept", "accept4", "recvmsg",
    "sendmsg", "connect", "nanosleep", "clock_nanosleep", "futex",
    "wait4", "waitid", "fsync", "fdatasync", "openat",
})

_LINE = re.compile(
    r"^(?:\[pid\s+\d+\]\s+)?"            # optional pid prefix (-f)
    r"(?P<ts>\d+\.\d+)\s+"               # -ttt absolute timestamp
    r"(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)"  # syscall name
    r"\((?P<args>.*?)\)?"                # arguments (lazily matched)
    r"\s*=\s*(?P<ret>[-\d?]+[^<]*?)"     # return value
    r"(?:\s*<(?P<dur>\d+\.\d+)>)?\s*$"   # -T duration
)
_UNFINISHED = re.compile(
    r"^(?:\[pid\s+\d+\]\s+)?(?P<ts>\d+\.\d+)\s+"
    r"(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\(.*<unfinished \.\.\.>\s*$")
_RESUMED = re.compile(
    r"^(?:\[pid\s+\d+\]\s+)?(?P<ts>\d+\.\d+)\s+<\.\.\.\s+"
    r"(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\s+resumed>.*?"
    r"(?:\s*<(?P<dur>\d+\.\d+)>)?\s*$")


def parse_strace(text: str, *, function: str = "fn",
                 untraced_latency_ms: Optional[float] = None) -> StraceLog:
    """Parse an ``strace -ttt -T`` log into a :class:`StraceLog`.

    Timestamps are rebased so the first event is t=0.  When
    ``untraced_latency_ms`` is not given, the traced span is used for both
    (i.e. no overhead correction will occur downstream).
    """
    records: list[SyscallRecord] = []
    pending: dict[str, float] = {}   # unfinished syscall name -> start ts
    base: Optional[float] = None
    last_end = 0.0
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith(("+++", "---")):
            continue  # signals / exit notices
        unfinished = _UNFINISHED.match(line)
        if unfinished:
            pending[unfinished.group("name")] = float(unfinished.group("ts"))
            continue
        resumed = _RESUMED.match(line)
        if resumed:
            name = resumed.group("name")
            start = pending.pop(name, None)
            dur = resumed.group("dur")
            if start is None or dur is None:
                continue
            if base is None:
                base = start
            start_ms = (start - base) * 1e3
            dur_ms = float(dur) * 1e3
            last_end = max(last_end, start_ms + dur_ms)
            if name in BLOCKING_SYSCALLS:
                records.append(SyscallRecord(start_ms=start_ms, name=name,
                                             duration_ms=dur_ms))
            continue
        match = _LINE.match(line)
        if match is None:
            raise ProfilingError(f"unparseable strace line: {raw!r}")
        ts = float(match.group("ts"))
        if base is None:
            base = ts
        dur = match.group("dur")
        start_ms = (ts - base) * 1e3
        dur_ms = float(dur) * 1e3 if dur is not None else 0.0
        last_end = max(last_end, start_ms + dur_ms)
        if match.group("name") in BLOCKING_SYSCALLS and dur is not None:
            records.append(SyscallRecord(start_ms=start_ms,
                                         name=match.group("name"),
                                         duration_ms=dur_ms))
    if base is None:
        raise ProfilingError("strace log contains no events")
    records.sort(key=lambda r: r.start_ms)
    traced = max(last_end, 1e-9)
    return StraceLog(function=function, records=tuple(records),
                     traced_latency_ms=traced,
                     untraced_latency_ms=(untraced_latency_ms
                                          if untraced_latency_ms is not None
                                          else traced))


def format_strace(log: StraceLog, *, base_ts: float = 1690000000.0,
                  include_noise_calls: bool = True) -> str:
    """Render a :class:`StraceLog` in ``strace -ttt -T`` format.

    ``include_noise_calls`` interleaves non-blocking syscalls (mmap/brk)
    the way real logs contain them, exercising the parser's filtering.
    """
    lines: list[str] = [
        # real logs open with execve at the process start: anchors t=0.
        # Zero duration, so the anchor never extends the traced span past
        # the workload's own records (a sub-0.2ms behaviour would otherwise
        # gain phantom CPU time and reconstruct with deflated block periods).
        f"{base_ts:.6f} execve(\"/usr/bin/python3\", [...], 0x7ffd) = 0 "
        f"<0.000000>",
    ]
    cursor = 0.0
    for i, rec in enumerate(log.records):
        if include_noise_calls and rec.start_ms > cursor:
            noise_ts = base_ts + (cursor + (rec.start_ms - cursor) / 2) / 1e3
            lines.append(f"{noise_ts:.6f} brk(NULL) = 0x55d3000 <0.000003>")
        ts = base_ts + rec.start_ms / 1e3
        dur_s = rec.duration_ms / 1e3
        lines.append(f"{ts:.6f} {rec.name}(3, [4], NULL, NULL, NULL) = 0 "
                     f"<{dur_s:.6f}>")
        cursor = rec.start_ms + rec.duration_ms
    if log.traced_latency_ms > cursor:
        end_ts = base_ts + log.traced_latency_ms / 1e3
        lines.append(f"{end_ts:.6f} exit_group(0) = ? <0.000000>")
    return "\n".join(lines)
