"""PGP: the Prediction-based Graph Partitioning scheduler (§3.4, Alg. 2).

Given a (profiled) workflow and a latency SLO, PGP decides

1. **how many processes** each stage runs (the minimum ``n`` whose predicted
   workflow latency meets the SLO — Alg. 2 lines 1-5);
2. **which functions share each process** (round-robin initialization refined
   by Kernighan-Lin function swapping that minimizes predicted latency —
   lines 8-11 and 18-25);
3. **how processes pack into wraps/sandboxes** (as few sandboxes as possible
   while the SLO still holds — lines 13-17).

Functions that conflict with others (runtime version or shared files, §3.4
end) are pinned to dedicated single-function wraps before partitioning.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.calibration import RuntimeCalibration
from repro.core.predictor import LatencyPredictor
from repro.core.wrap import (
    DeploymentPlan,
    ExecMode,
    ProcessAssignment,
    StageAssignment,
    Wrap,
)
from repro.errors import SchedulingError
from repro.workflow.model import FunctionSpec, Workflow


@dataclass
class PGPOptions:
    """Tunable knobs (defaults reproduce the paper; others feed ablations)."""

    #: run the Kernighan-Lin swap refinement (lines 10-11); turning it off
    #: keeps the round-robin initial partition.
    kernighan_lin: bool = True
    #: let each wrap's first group run as orchestrator threads (no fork).
    #: ``True`` always, ``False`` never (every group forks), or
    #: ``"sequential-only"`` — only single-function stages ride the
    #: orchestrator, parallel groups always fork (the Chiron-M fairness
    #: configuration of §4).
    orchestrator_threads: object = True
    #: "incremental" scans n = 1,2,3,... (Alg. 2 line 3); "exponential" uses
    #: doubling + binary search (the parallelizable speed-up of §7).
    search: str = "exponential"
    #: raise instead of returning a best-effort plan when no n meets the SLO.
    strict: bool = False
    #: cap on functions per process.  ``1`` forces one process per parallel
    #: function — the Chiron-M configuration (§4: MPK threads for sequential
    #: functions, forked processes for parallel ones).
    max_threads_per_process: Optional[int] = None


def conflicted_functions(workflow: Workflow) -> set[str]:
    """Functions pinned to dedicated sandboxes (§3.4 end).

    Conflicts form a graph; pinning a greedy vertex cover (repeatedly
    pin the highest-degree endpoint) leaves the rest mutually
    compatible while isolating as few functions as possible — e.g. one
    ``python2`` function among ``python3`` peers is pinned alone rather
    than pinning the whole stage.  Module-level because the plan search
    (:mod:`repro.core.search`) relies on the same pinning to keep every
    move conflict-free by construction.
    """
    fns = workflow.functions
    edges = {(a.name, b.name)
             for a, b in itertools.combinations(fns, 2)
             if a.conflicts_with(b)}
    pinned: set[str] = set()
    while edges:
        degree: dict[str, int] = {}
        for a, b in edges:
            degree[a] = degree.get(a, 0) + 1
            degree[b] = degree.get(b, 0) + 1
        victim = max(sorted(degree), key=lambda n: degree[n])
        pinned.add(victim)
        edges = {(a, b) for a, b in edges if victim not in (a, b)}
    return pinned


class PGPScheduler:
    """Runs Algorithm 2 against a :class:`LatencyPredictor`."""

    def __init__(self, predictor: Optional[LatencyPredictor] = None, *,
                 options: Optional[PGPOptions] = None) -> None:
        self.predictor = predictor or LatencyPredictor(
            RuntimeCalibration.native(), conservatism=1.05)
        self.options = options or PGPOptions()
        #: :class:`repro.core.search.SearchResult` of the most recent
        #: ``schedule(search=...)`` call, ``None`` for plain KL runs.
        self.last_search = None

    # ------------------------------------------------------------------
    # public entry
    # ------------------------------------------------------------------
    def schedule(self, workflow: Workflow, slo_ms: float, *,
                 search=None, tracer=None) -> DeploymentPlan:
        """Produce a deployment plan meeting ``slo_ms`` with minimal CPUs.

        All prediction state lives in the predictor's content-addressed
        :class:`~repro.core.predictor.PredictionCache`, so warmth survives
        across ``schedule()`` calls: an SLO sweep over one workflow, or
        re-planning after partial drift, re-simulates only stages and
        thread groups whose fingerprints actually changed.

        ``search`` enables anytime refinement of the greedy KL plan:
        ``"sa"``/``"portfolio"`` or a :class:`repro.core.search.SearchOptions`
        anneal from the KL seed — the seed's per-stage predictions are
        served back from the shared cache, never recomputed — and the
        refined plan is returned (details in :attr:`last_search`).
        """
        self.last_search = None
        plan = self._schedule_kl(workflow, slo_ms)
        from repro.core.search import SearchOptions, refine_plan

        opts = SearchOptions.coerce(search)
        if opts is None:
            return plan
        result = refine_plan(workflow, plan, slo_ms, self.predictor, opts,
                             tracer=tracer)
        self.last_search = result
        return result.plan

    def _schedule_kl(self, workflow: Workflow,
                     slo_ms: float) -> DeploymentPlan:
        """Algorithm 2 proper: minimal-n scan + KL swaps + wrap repacking."""
        if slo_ms <= 0:
            raise SchedulingError(f"SLO must be > 0, got {slo_ms}")
        conflicted = conflicted_functions(workflow)
        max_n = max(
            (len([f for f in st if f.name not in conflicted])
             for st in workflow.stages),
            default=0)
        max_n = max(max_n, 1)

        evaluated: Dict[int, tuple[dict, DeploymentPlan]] = {}

        def evaluate(n: int) -> DeploymentPlan:
            if n not in evaluated:
                partitions = self._partition_all_stages(workflow, n, conflicted)
                plan = self._build_plan(workflow, partitions, conflicted,
                                        wraps_per_stage=None, slo_ms=slo_ms)
                predicted = self.predictor.predict_workflow(workflow, plan)
                evaluated[n] = (partitions, self._with_prediction(plan, predicted))
            return evaluated[n][1]

        chosen_n = self._search_minimal_n(evaluate, max_n, slo_ms)
        if chosen_n is None:
            best_n = min(evaluated,
                         key=lambda n: (evaluated[n][1].predicted_latency_ms
                                        or float("inf")))
            if self.options.strict:
                raise SchedulingError(
                    f"no partition of {workflow.name!r} meets "
                    f"SLO={slo_ms} ms (best prediction "
                    f"{evaluated[best_n][1].predicted_latency_ms:.1f} ms)")
            # Best-effort / performance-first mode: no n satisfies the SLO,
            # so return the latency-minimal deployment — including a
            # latency-oriented wrap regrouping of the best partition.
            return self._repack_min_latency(workflow, evaluated[best_n][0],
                                            conflicted, slo_ms,
                                            fallback=evaluated[best_n][1])

        # lines 13-17: repack processes into as few wraps as possible.
        partitions, _ = evaluated[chosen_n]
        return self._repack(workflow, partitions, conflicted, slo_ms)

    def trim_cores(self, workflow: Workflow, plan: DeploymentPlan,
                   slo_ms: float) -> DeploymentPlan:
        """Shrink per-wrap cpusets while the SLO still holds (§4, Obs. 4).

        Wraps default to one CPU per concurrent process; the combined
        true/pseudo parallelism lets processes share CPUs at a small latency
        cost (Figure 7), so we greedily drop cores wrap by wrap as long as
        the predicted workflow latency stays within the SLO.
        """
        cores = {w.name: plan.cores_for(w) for w in plan.wraps}

        def rebuilt() -> DeploymentPlan:
            return DeploymentPlan(
                workflow_name=plan.workflow_name, wraps=plan.wraps,
                cores=dict(cores), pool_workers=plan.pool_workers,
                predicted_latency_ms=None, slo_ms=slo_ms)

        current = self.predictor.predict_workflow(workflow, rebuilt())
        if current > slo_ms:
            return self._with_prediction(rebuilt(), current)
        improved = True
        while improved:
            improved = False
            for wrap in plan.wraps:
                if cores[wrap.name] <= 1:
                    continue
                cores[wrap.name] -= 1
                predicted = self.predictor.predict_workflow(workflow,
                                                            rebuilt())
                if predicted <= slo_ms:
                    current = predicted
                    improved = True
                else:
                    cores[wrap.name] += 1
        return self._with_prediction(rebuilt(), current)

    def schedule_pool(self, workflow: Workflow, slo_ms: float, *,
                      workers: Optional[int] = None) -> DeploymentPlan:
        """Chiron-P: one pool-backed wrap; find the minimal cpuset (§4).

        All functions deploy into a single sandbox whose pre-forked pool
        gives true parallelism; Chiron shares CPUs between workers via
        affinity, so the knob PGP turns is the number of cores.
        """
        if slo_ms <= 0:
            raise SchedulingError(f"SLO must be > 0, got {slo_ms}")
        workers = workers or workflow.max_parallelism
        wrap = Wrap(name="wrap-pool", stages=tuple(
            StageAssignment(
                stage_index=i,
                processes=(ProcessAssignment(
                    functions=tuple(f.name for f in stage),
                    mode=ExecMode.POOL),))
            for i, stage in enumerate(workflow.stages)))
        best: Optional[DeploymentPlan] = None
        for cores in range(1, workers + 1):
            plan = DeploymentPlan(
                workflow_name=workflow.name, wraps=(wrap,),
                cores={wrap.name: cores}, pool_workers=workers,
                slo_ms=slo_ms)
            predicted = self.predictor.predict_workflow(workflow, plan)
            plan = self._with_prediction(plan, predicted)
            if best is None or predicted < (best.predicted_latency_ms
                                            or float("inf")):
                best = plan
            if predicted <= slo_ms:
                return plan
        assert best is not None
        if self.options.strict:
            raise SchedulingError(
                f"pool plan cannot meet SLO={slo_ms} ms "
                f"(best {best.predicted_latency_ms:.1f} ms)")
        return best

    # ------------------------------------------------------------------
    # n-search (Alg. 2 lines 1-5; exponential variant per §7's speed-up)
    # ------------------------------------------------------------------
    def _search_minimal_n(self, evaluate, max_n: int,
                          slo_ms: float) -> Optional[int]:
        def ok(n: int) -> bool:
            plan = evaluate(n)
            return (plan.predicted_latency_ms or float("inf")) <= slo_ms

        if self.options.search == "incremental":
            for n in range(1, max_n + 1):
                if ok(n):
                    return n
            return None
        if self.options.search != "exponential":
            raise SchedulingError(f"unknown search {self.options.search!r}")
        # Doubling probe for the first satisfying power of two...
        n = 1
        prev = 0
        while n < max_n and not ok(n):
            prev = n
            n *= 2
        n = min(n, max_n)
        if not ok(n):
            return None
        # ... then binary refinement in (prev, n]: latency is non-increasing
        # in n for the workloads we target, so this finds the minimum probed
        # satisfying n.
        lo, hi = prev + 1, n
        while lo < hi:
            mid = (lo + hi) // 2
            if ok(mid):
                hi = mid
            else:
                lo = mid + 1
        return hi

    # ------------------------------------------------------------------
    # conflicts (§3.4 end)
    # ------------------------------------------------------------------
    #: kept as a static alias; the implementation moved to module level so
    #: the plan search shares the exact pinning.
    _conflicted_functions = staticmethod(conflicted_functions)

    # ------------------------------------------------------------------
    # partitioning (lines 8-11)
    # ------------------------------------------------------------------
    def _exec_prediction(self, workflow: Workflow,
                         names: Sequence[str]) -> float:
        # Keyed on the *behaviour multiset* by the predictor's cache:
        # permutations and equal-behaviour swaps (ubiquitous in fan-out
        # stages) share one entry, and warmth persists across schedule()
        # calls and SLO sweeps.
        behaviors = [workflow.function(n).behavior for n in names]
        return self.predictor.predict_exec_canonical(behaviors)

    def _partition_stage(self, workflow: Workflow,
                         names: list[str], n: int) -> list[list[str]]:
        """Split one stage's functions into <= n process sets."""
        k = min(n, len(names))
        if self.options.max_threads_per_process is not None and names:
            import math as _math
            k = max(k, _math.ceil(len(names)
                                  / self.options.max_threads_per_process))
            k = min(k, len(names))
        if k <= 0:
            return []
        parts = [names[j::k] for j in range(k)]  # line 9's round-robin init
        if self.options.kernighan_lin and k > 1:
            for i, j in itertools.combinations(range(k), 2):
                parts[i], parts[j] = self._kernighan_lin(
                    workflow, parts[i], parts[j])
        return parts

    def _partition_all_stages(self, workflow: Workflow, n: int,
                              conflicted: set[str]) -> dict[int, list[list[str]]]:
        partitions: dict[int, list[list[str]]] = {}
        for i, stage in enumerate(workflow.stages):
            names = [f.name for f in stage if f.name not in conflicted]
            partitions[i] = self._partition_stage(workflow, names, n)
        return partitions

    def _pair_objective(self, workflow: Workflow, a: Sequence[str],
                        b: Sequence[str]) -> float:
        """Latency contribution of two processes: the slower of the two.

        Fork positions are unaffected by swapping functions between two
        fixed processes, so the pairwise objective reduces to the max of the
        Algorithm-1 execution predictions.
        """
        ea = self._exec_prediction(workflow, a) if a else 0.0
        eb = self._exec_prediction(workflow, b) if b else 0.0
        return max(ea, eb)

    #: swap gains below max(absolute, relative * objective) are treated as
    #: noise and terminate the KL pass — profiled behaviours carry jitter
    #: that would otherwise make KL chase irrelevant sub-0.1 ms swaps.
    _KL_MIN_GAIN_ABS_MS = 0.05
    _KL_MIN_GAIN_REL = 1e-3
    #: per pick, only the top-K longest functions of the heavier set and the
    #: top-K shortest of the lighter set are considered: under the
    #: max-of-two-processes objective, the best swap always moves work off
    #: the heavier process, so the search space prunes safely.
    _KL_CANDIDATE_WINDOW = 6

    def _kernighan_lin(self, workflow: Workflow, a: list[str],
                       b: list[str]) -> tuple[list[str], list[str]]:
        """Lines 18-25: greedy swap sequence, then apply the best prefix.

        Candidate swaps are pruned against an optimistic lower bound before
        paying for an Algorithm-1 replay: under the GIL every CPU
        millisecond serializes, so a process's *unscaled* CPU sum bounds its
        execution prediction from below (execution overheads and isolation
        startup only add).  A swap whose bound already exceeds the incumbent
        best objective cannot win and is skipped — the chosen swap sequence
        is unchanged, so plans stay bit-identical with pruning on or off.
        """
        solo = {f.name: f.behavior.solo_ms for f in workflow.functions}
        cal = self.predictor.cal
        can_prune = (cal.has_gil and cal.exec_overhead_cpu >= 0
                     and cal.isolation_startup_ms >= 0)
        cpu = ({f.name: f.behavior.cpu_ms for f in workflow.functions}
               if can_prune else {})
        metrics = (self.predictor.cache.metrics
                   if self.predictor.cache is not None else None)
        c_eval = (metrics.counter("pgp.kl.swaps.evaluated")
                  if metrics is not None else None)
        c_pruned = (metrics.counter("pgp.kl.swaps.pruned")
                    if metrics is not None else None)
        work_a, work_b = list(a), list(b)
        cand_a, cand_b = list(a), list(b)
        swaps: list[tuple[str, str]] = []
        gains: list[float] = []
        current = self._pair_objective(workflow, work_a, work_b)
        window = self._KL_CANDIDATE_WINDOW
        while cand_a and cand_b:
            # Heavier set donates long functions, lighter set donates short
            # ones; restrict to a window of each when the sets are large.
            ea = self._exec_prediction(workflow, work_a)
            eb = self._exec_prediction(workflow, work_b)
            heavy_first = ea >= eb
            xs = sorted(cand_a, key=lambda f: solo[f], reverse=heavy_first)
            ys = sorted(cand_b, key=lambda f: solo[f], reverse=not heavy_first)
            xs, ys = xs[:window], ys[:window]
            if can_prune:
                cpu_a = sum(cpu[f] for f in work_a)
                cpu_b = sum(cpu[f] for f in work_b)
            best: Optional[tuple[float, str, str]] = None
            for x in xs:
                for y in ys:
                    if can_prune and best is not None:
                        lb = max(cpu_a - cpu[x] + cpu[y],
                                 cpu_b - cpu[y] + cpu[x])
                        if lb >= best[0] + 1e-9:
                            if c_pruned is not None:
                                c_pruned.inc()
                            continue
                    if c_eval is not None:
                        c_eval.inc()
                    na = [f if f != x else y for f in work_a]
                    nb = [f if f != y else x for f in work_b]
                    obj = self._pair_objective(workflow, na, nb)
                    if best is None or obj < best[0]:
                        best = (obj, x, y)
            assert best is not None
            obj, x, y = best
            threshold = max(self._KL_MIN_GAIN_ABS_MS,
                            self._KL_MIN_GAIN_REL * current)
            if obj >= current - threshold:
                # No materially improving swap remains; with prefix-gain
                # selection a non-improving head swap can never enter the
                # applied prefix, so end the pass.
                break
            gains.append(current - obj)        # line 22
            swaps.append((x, y))
            work_a = [f if f != x else y for f in work_a]
            work_b = [f if f != y else x for f in work_b]
            current = obj
            cand_a.remove(x)
            cand_b.remove(y)
        # line 24: the prefix with the largest cumulative gain
        best_k, best_sum, run = 0, 0.0, 0.0
        for k, g in enumerate(gains, start=1):
            run += g
            if run > best_sum + 1e-12:
                best_sum, best_k = run, k
        out_a, out_b = list(a), list(b)
        for x, y in swaps[:best_k]:
            out_a = [f if f != x else y for f in out_a]
            out_b = [f if f != y else x for f in out_b]
        return out_a, out_b

    # ------------------------------------------------------------------
    # plan construction
    # ------------------------------------------------------------------
    def _initial_wraps_per_stage(self, k: int) -> int:
        """Line 7: wrap 1 holds ``min(floor(T_RPC / T_block), k)`` processes,
        every further process gets its own wrap."""
        cal = self.predictor.cal
        first = max(1, min(int(cal.t_rpc_ms // cal.fork_block_ms), k))
        return 1 + max(0, k - first)

    def _build_plan(self, workflow: Workflow,
                    partitions: dict[int, list[list[str]]],
                    conflicted: set[str],
                    wraps_per_stage: Optional[dict[int, int]],
                    slo_ms: Optional[float],
                    validate: bool = True) -> DeploymentPlan:
        """Materialize wraps from per-stage partitions.

        ``wraps_per_stage`` gives each stage's wrap count; ``None`` uses the
        line-7 initial grouping.
        """
        per_stage: dict[int, int] = {}
        for i, parts in partitions.items():
            k = len(parts)
            if k == 0:
                continue
            if wraps_per_stage is not None:
                per_stage[i] = max(1, min(wraps_per_stage.get(i, 1), k))
            else:
                per_stage[i] = self._initial_wraps_per_stage(k)
        total_wraps = max(per_stage.values(), default=1)

        stage_assignments: dict[int, dict[int, list[ProcessAssignment]]] = {}
        for i, parts in partitions.items():
            if not parts:
                continue
            w = per_stage[i]
            buckets: list[list[list[str]]] = [[] for _ in range(w)]
            if wraps_per_stage is None:
                # line 7 shape: first wrap takes the head chunk, the rest one
                # process each.
                head = len(parts) - (w - 1)
                buckets[0] = parts[:head]
                for j, proc in enumerate(parts[head:], start=1):
                    buckets[j] = [proc]
            else:
                for j, proc in enumerate(parts):
                    buckets[j % w].append(proc)
            ot = self.options.orchestrator_threads
            stage_is_sequential = len(workflow.stages[i]) == 1
            allow_thread = (ot is True
                            or (ot == "sequential-only" and stage_is_sequential))
            for wrap_idx, procs in enumerate(buckets):
                if not procs:
                    continue
                assignments = []
                for p_idx, fn_names in enumerate(procs):
                    thread_ok = allow_thread and p_idx == 0
                    assignments.append(ProcessAssignment(
                        functions=tuple(fn_names),
                        mode=ExecMode.THREAD if thread_ok else ExecMode.PROCESS))
                stage_assignments.setdefault(wrap_idx, {})[i] = assignments

        wraps: list[Wrap] = []
        for wrap_idx in range(total_wraps):
            stages = stage_assignments.get(wrap_idx)
            if not stages and wrap_idx > 0:
                continue
            wraps.append(Wrap(
                name=f"wrap-{wrap_idx + 1}",
                stages=tuple(StageAssignment(stage_index=i,
                                             processes=tuple(procs))
                             for i, procs in sorted((stages or {}).items()))))
        if wraps and not wraps[0].stages:
            wraps = wraps[1:]

        # dedicated wraps for conflicted functions (one function, own sandbox)
        for name in sorted(conflicted):
            stage_idx = next(i for i, st in enumerate(workflow.stages)
                             if any(f.name == name for f in st))
            wraps.append(Wrap(
                name=f"wrap-solo-{name}",
                stages=(StageAssignment(
                    stage_index=stage_idx,
                    processes=(ProcessAssignment(
                        functions=(name,), mode=ExecMode.THREAD),)),)))
        if not wraps:
            raise SchedulingError(f"nothing to deploy for {workflow.name!r}")

        cores = {w.name: w.max_concurrent_processes for w in wraps}
        plan = DeploymentPlan(workflow_name=workflow.name,
                              wraps=tuple(wraps), cores=cores,
                              slo_ms=slo_ms)
        if validate:
            plan.validate(workflow)
        return plan

    @staticmethod
    def _with_prediction(plan: DeploymentPlan,
                         predicted: float) -> DeploymentPlan:
        return DeploymentPlan(workflow_name=plan.workflow_name,
                              wraps=plan.wraps, cores=plan.cores,
                              pool_workers=plan.pool_workers,
                              predicted_latency_ms=predicted,
                              slo_ms=plan.slo_ms)

    # ------------------------------------------------------------------
    # repacking (lines 13-17)
    # ------------------------------------------------------------------
    def _repack(self, workflow: Workflow,
                partitions: dict[int, list[list[str]]],
                conflicted: set[str], slo_ms: float) -> DeploymentPlan:
        """Minimize the sandbox count W, then per-stage wrap counts <= W."""
        max_k = max((len(p) for p in partitions.values() if p), default=1)
        best: Optional[DeploymentPlan] = None
        for w_cap in range(1, max_k + 1):
            per_stage = self._best_wraps_under_cap(workflow, partitions,
                                                   conflicted, w_cap, slo_ms)
            plan = self._build_plan(workflow, partitions, conflicted,
                                    wraps_per_stage=per_stage, slo_ms=slo_ms)
            predicted = self.predictor.predict_workflow(workflow, plan)
            plan = self._with_prediction(plan, predicted)
            if best is None or predicted < (best.predicted_latency_ms
                                            or float("inf")):
                best = plan
            if predicted <= slo_ms:
                return plan
        assert best is not None
        return best  # SLO regression during packing: fall back to best seen

    def _repack_min_latency(self, workflow: Workflow,
                            partitions: dict[int, list[list[str]]],
                            conflicted: set[str], slo_ms: float,
                            fallback: DeploymentPlan) -> DeploymentPlan:
        """Regroup processes into wraps minimizing *predicted latency*.

        Used when the SLO is unsatisfiable (performance-first mode): for
        each sandbox-count cap the per-stage wrap counts are chosen for
        minimum stage latency, and the overall latency-minimal plan wins.
        """
        max_k = max((len(p) for p in partitions.values() if p), default=1)
        best = fallback
        for w_cap in range(1, max_k + 1):
            per_stage = self._best_wraps_under_cap(workflow, partitions,
                                                   conflicted, w_cap, slo_ms)
            plan = self._build_plan(workflow, partitions, conflicted,
                                    wraps_per_stage=per_stage, slo_ms=slo_ms)
            predicted = self.predictor.predict_workflow(workflow, plan)
            if predicted < (best.predicted_latency_ms or float("inf")):
                best = self._with_prediction(plan, predicted)
        return best

    def _best_wraps_under_cap(self, workflow: Workflow,
                              partitions: dict[int, list[list[str]]],
                              conflicted: set[str], w_cap: int,
                              slo_ms: float) -> dict[int, int]:
        """For each stage, the wrap count <= w_cap minimizing its latency."""
        out: dict[int, int] = {}
        for i, parts in partitions.items():
            if not parts:
                continue
            k = len(parts)
            best_w, best_t = 1, float("inf")
            for w in range(1, min(w_cap, k) + 1):
                plan = self._build_plan(workflow, {i: parts}, set(),
                                        wraps_per_stage={i: w}, slo_ms=slo_ms,
                                        validate=False)
                t = self.predictor.predict_stage(plan, workflow, i)
                if t < best_t - 1e-9:
                    best_w, best_t = w, t
            out[i] = best_w
        return out
