"""SLO policy helpers (§6.2 "SLO violation").

The paper sets each workflow's SLO to "the average latency of Faastlane with
an additional 10 ms slack" and measures the fraction of requests exceeding
it.  These helpers encode that convention and the violation-rate metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import SchedulingError

#: the paper's slack on top of the Faastlane baseline latency
DEFAULT_SLACK_MS = 10.0


@dataclass(frozen=True)
class SloPolicy:
    """A latency target and how to judge runs against it."""

    slo_ms: float

    def __post_init__(self) -> None:
        if self.slo_ms <= 0:
            raise SchedulingError(f"SLO must be positive, got {self.slo_ms}")

    @classmethod
    def from_baseline(cls, baseline_latency_ms: float,
                      slack_ms: float = DEFAULT_SLACK_MS) -> "SloPolicy":
        """The paper's convention: baseline average + 10 ms slack."""
        return cls(slo_ms=baseline_latency_ms + slack_ms)

    def violated(self, latency_ms: float) -> bool:
        return latency_ms > self.slo_ms

    def violation_rate(self, latencies_ms: Sequence[float]) -> float:
        """Fraction of runs exceeding the SLO (Figure 14's metric)."""
        if not latencies_ms:
            raise SchedulingError("violation_rate of an empty sample")
        return sum(1 for l in latencies_ms if self.violated(l)) / len(latencies_ms)
