"""The Chiron deployment manager: the §3.1 pipeline end to end.

Steps (Figure 9): Ê user submits workflow + SLO → Ë Profiler collects each
function's CPU/block periods → Ì PGP explores the optimal wrap design via
the Predictor → Í the Generator emits per-wrap orchestrator code → Î the
platform spawns a sandbox per wrap → Ï requests flow through wrap 1.

The manager executes steps Ê-Í and hands the plan to a platform (simulated
:class:`repro.platforms.ChironPlatform` or the real
:mod:`repro.localexec`).  :meth:`refresh` re-runs profiling + scheduling —
the periodic wrap update of §3.4's last paragraph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.calibration import RuntimeCalibration
from repro.core.generator import OrchestratorGenerator
from repro.core.pgp import PGPOptions, PGPScheduler
from repro.core.predictor import LatencyPredictor
from repro.core.profiler import FunctionProfile, Profiler
from repro.core.wrap import DeploymentPlan
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.workflow.model import Workflow

#: the conservatism PGP plans with (§6.2: "larger parameters ... avoiding
#: performance violation resulting from mispredictions")
DEFAULT_CONSERVATISM = 1.15


@dataclass
class Deployment:
    """Everything the manager produced for one workflow."""

    workflow: Workflow
    profiled_workflow: Workflow
    profiles: Dict[str, FunctionProfile]
    plan: DeploymentPlan
    orchestrator_sources: Dict[str, str] = field(default_factory=dict)
    #: the fault plan the deployment was hardened against (None = fault-free)
    fault_plan: Optional["FaultPlan"] = None
    #: fault-adjusted tail estimate for ``plan`` (None when fault-free)
    fault_adjusted_p99_ms: Optional[float] = None
    #: boot tier the deployment was planned against (None = warm-only SLO)
    boot_tier: Optional[str] = None
    #: predicted first-invocation latency including the boot-tier penalty
    #: (None when no boot tier was planned for)
    first_invocation_ms: Optional[float] = None
    #: :class:`repro.core.search.SearchResult` of the anytime plan search
    #: that refined the KL seed (None when search was disabled)
    search_result: Optional[object] = None

    @property
    def predicted_latency_ms(self) -> Optional[float]:
        return self.plan.predicted_latency_ms


class ChironManager:
    """Profiles, schedules and generates deployments for workflows."""

    def __init__(self, *, cal: Optional[RuntimeCalibration] = None,
                 profiler: Optional[Profiler] = None,
                 options: Optional[PGPOptions] = None,
                 conservatism: float = DEFAULT_CONSERVATISM,
                 search=None) -> None:
        self.cal = cal or RuntimeCalibration.native()
        self.profiler = profiler or Profiler()
        # One predictor (and thus one PredictionCache) for the manager's
        # lifetime: deploy, refresh and fault-degradation loops re-evaluate
        # mostly-unchanged plans, so stage predictions carry across.
        self.predictor = LatencyPredictor(self.cal,
                                          conservatism=conservatism)
        self.scheduler = PGPScheduler(self.predictor, options=options)
        self.generator = OrchestratorGenerator()
        #: default anytime-search setting for every deploy: None/"none",
        #: "sa", "portfolio" or a :class:`repro.core.search.SearchOptions`
        self.search = search

    @property
    def prediction_cache(self):
        """The predictor's :class:`repro.core.predictor.PredictionCache`
        (``None`` if caching was disabled) — inspect ``.metrics`` for the
        ``pgp.*`` counters accumulated across deploys and refreshes."""
        return self.predictor.cache

    def deploy(self, workflow: Workflow, slo_ms: float, *,
               generate_code: bool = True, tracer=None,
               fault_plan: Optional[FaultPlan] = None,
               retry: Optional[RetryPolicy] = None,
               boot_tier=None, search=None) -> Deployment:
        """Run the full pipeline for one workflow.

        ``tracer`` (a :class:`repro.obs.Tracer`) records each pipeline phase
        as a wall-clock span on the ``manager`` entity — how long profiling,
        PGP's predict/partition search, and code generation each took.

        ``fault_plan`` arms reliability-aware scheduling: when the
        fault-adjusted p99 estimate of PGP's plan exceeds the SLO, the
        manager gracefully degrades to smaller wraps (smaller blast radius
        at the cost of more sandboxes) until the estimate fits.

        ``boot_tier`` (a :class:`repro.lifecycle.BootTier`) makes the SLO
        cover the *first* invocation: PGP re-plans against the SLO minus
        the plan's boot-wave penalty, iterating because tighter warm
        budgets can change the wrap structure and thus the penalty itself.
        The returned deployment records the tier and the predicted
        first-invocation latency.

        ``search`` enables the anytime plan search
        (:mod:`repro.core.search`) on top of PGP's greedy KL plan:
        ``"sa"``, ``"portfolio"`` or a
        :class:`repro.core.search.SearchOptions`.  ``None`` inherits the
        manager-wide default (``self.search``); pass ``"none"`` to disable
        for this deploy only.  The search outcome lands in
        :attr:`Deployment.search_result`.
        """
        if tracer is None:
            from repro.obs.tracer import NULL_TRACER
            tracer = NULL_TRACER
        if search is None:
            search = self.search
        with tracer.span("manager.profile", entity="manager",
                         functions=workflow.num_functions):
            profiles = self.profiler.profile_workflow(workflow)
            profiled = Profiler.profiled_workflow(workflow, profiles)
        with tracer.span("manager.schedule", entity="manager",
                         slo_ms=slo_ms) as handle:
            plan = self.scheduler.schedule(profiled, slo_ms,
                                           search=search, tracer=tracer)
            search_result = self.scheduler.last_search
            if search_result is not None:
                handle.tags.update(
                    search=search_result.method,
                    search_cost=search_result.cost,
                    search_seed_cost=search_result.seed_cost,
                    search_evals=search_result.evaluations)
        first_invocation_ms = None
        if boot_tier is not None:
            with tracer.span("manager.boot_budget", entity="manager",
                             tier=getattr(boot_tier, "value", boot_tier)):
                plan, first_invocation_ms = self._plan_with_boot_budget(
                    profiled, plan, slo_ms, boot_tier, search=search)
        adjusted_p99 = None
        if fault_plan is not None and not fault_plan.is_null:
            # local import: repro.faults.__init__ pulls in reliability, which
            # needs repro.core.wrap — importing it here keeps either package
            # importable first without a cycle
            from repro.faults.reliability import degrade_until_slo

            with tracer.span("manager.degrade", entity="manager",
                             slo_ms=slo_ms) as handle:
                plan, adjusted_p99, splits = degrade_until_slo(
                    profiled, plan, fault_plan, retry or RetryPolicy(),
                    slo_ms,
                    lambda p: self.predictor.predict_workflow(profiled, p))
                handle.tags.update(splits=splits, adjusted_p99_ms=adjusted_p99)
        with tracer.span("manager.generate", entity="manager",
                         enabled=generate_code):
            sources = (self.generator.generate(profiled, plan)
                       if generate_code else {})
        return Deployment(workflow=workflow, profiled_workflow=profiled,
                          profiles=profiles, plan=plan,
                          orchestrator_sources=sources,
                          fault_plan=fault_plan,
                          fault_adjusted_p99_ms=adjusted_p99,
                          boot_tier=(getattr(boot_tier, "value", boot_tier)
                                     if boot_tier is not None else None),
                          first_invocation_ms=first_invocation_ms,
                          search_result=search_result)

    def _plan_with_boot_budget(self, profiled: Workflow,
                               plan: DeploymentPlan, slo_ms: float,
                               boot_tier,
                               search=None) -> tuple[DeploymentPlan, float]:
        """Re-schedule so warm latency + boot penalty fits the SLO.

        At most three iterations: the penalty depends on the plan's boot
        waves, and a tighter warm budget can merge or split wraps, but the
        wave count moves monotonically toward a fixed point in practice —
        if the budget itself would go non-positive, the boot penalty alone
        exceeds the SLO and the last plan is returned as best effort.
        """
        predictor = self.predictor
        best_first = predictor.predict_first_invocation(profiled, plan,
                                                        tier=boot_tier)
        for _ in range(3):
            if best_first <= slo_ms:
                break
            penalty = predictor.boot_penalty_ms(plan, profiled, boot_tier)
            warm_budget = slo_ms - penalty
            if warm_budget <= 0:
                break
            replanned = self.scheduler.schedule(profiled, warm_budget,
                                                search=search)
            first = predictor.predict_first_invocation(profiled, replanned,
                                                       tier=boot_tier)
            if first >= best_first:
                break
            plan, best_first = replanned, first
        return plan, best_first

    def plan(self, workflow: Workflow, slo_ms: float, *,
             fault_plan: Optional[FaultPlan] = None,
             retry: Optional[RetryPolicy] = None) -> DeploymentPlan:
        """Convenience: profile + schedule, return just the plan."""
        return self.deploy(workflow, slo_ms, generate_code=False,
                           fault_plan=fault_plan, retry=retry).plan

    def brownout(self, plan: DeploymentPlan, level: int = 1) -> DeploymentPlan:
        """Shed optional parallelism from ``plan`` under sustained overload.

        Each level halves the per-wrap concurrent-process budget from the
        plan's current peak (level 1 → peak/2, level 2 → peak/4, ..., floor
        1): forked groups beyond the budget run as threads of the
        orchestrator, trading request latency for core footprint so the same
        machines absorb more concurrent requests.  ``level=0`` returns the
        plan unchanged.
        """
        if level < 0:
            raise ValueError(f"brownout level must be >= 0, got {level}")
        if level == 0:
            return plan
        from repro.overload.brownout import degrade_plan

        peak = max(w.max_concurrent_processes for w in plan.wraps)
        cap = max(1, peak >> level)
        return degrade_plan(plan, max_processes_per_wrap=cap)

    def refresh(self, deployment: Deployment,
                slo_ms: Optional[float] = None, *,
                workflow: Optional[Workflow] = None,
                search=None, generate_code: bool = True) -> Deployment:
        """Periodic re-profiling and re-scheduling (workload drift, §3.4).

        ``workflow`` carries the *currently observed* behaviours (drifted
        functions re-measured on the live system); it defaults to the
        originally deployed workflow, i.e. a blind refresh.  Because the
        manager's predictor (and its prediction cache) is shared across
        deploys, stages whose behaviours did not drift fingerprint
        identically and are re-planned from cache — the cost of a refresh
        scales with how much of the workflow actually changed.  A refresh
        of a fault-hardened deployment stays hardened: the original
        ``fault_plan`` carries over.
        """
        target = slo_ms if slo_ms is not None else deployment.plan.slo_ms
        if target is None:
            raise ValueError("deployment has no SLO to refresh against")
        wf = workflow if workflow is not None else deployment.workflow
        return self.deploy(wf, target, search=search,
                           generate_code=generate_code,
                           fault_plan=deployment.fault_plan)
