"""Adaptive deployment: periodic re-profiling and re-planning (§3.4).

"The Profiler and PGP are re-run periodically to update wraps, enabling
them to adapt to changes in the workload."  The :class:`AdaptiveDeployer`
implements that loop: it watches a window of measured request latencies and
triggers a refresh when the deployment has drifted out of spec —

* **SLO pressure**: the windowed p90 approaches/exceeds the SLO (the
  workload got heavier; more processes/wraps are needed), or
* **over-provisioning**: the windowed mean sits far below the SLO (the
  workload got lighter; CPUs can be reclaimed).

Refreshing re-profiles the *current* workflow behaviours, so drifted
functions are re-measured exactly as on the real system.

Refreshes reuse the manager's predictor and its
:class:`~repro.core.predictor.PredictionCache`: stages whose behaviours did
not drift fingerprint identically and are served from cache, so the cost of
a refresh scales with how much of the workflow actually changed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from repro.core.manager import ChironManager, Deployment
from repro.errors import SchedulingError
from repro.metrics.stats import percentile
from repro.obs.metrics import Registry
from repro.workflow.model import Workflow


@dataclass
class AdaptationEvent:
    """One refresh decision, for auditing."""

    request_index: int
    reason: str               # "slo-pressure" | "over-provisioned"
    p90_ms: float
    old_cores: int
    new_cores: int


class AdaptiveDeployer:
    """Wraps a :class:`ChironManager` with a drift-triggered refresh loop.

    ``hysteresis`` is the number of *consecutive* breaching evaluations
    required before a refresh fires (1 = the historical trigger-on-first-
    breach behaviour): an alternating heavy/light workload whose windows
    flip between breach and health never accumulates a streak, so it never
    thrashes the scheduler.  ``registry`` (a
    :class:`repro.obs.metrics.Registry`) receives the ``adaptation.*``
    counters; a private registry is created when none is given.

    For the guarded version of this loop — divergence-driven detection,
    canary replans, rollback — see
    :class:`repro.core.controlplane.RedeploymentControlPlane`.
    """

    def __init__(self, manager: Optional[ChironManager] = None, *,
                 window: int = 20,
                 pressure_fraction: float = 0.95,
                 slack_fraction: float = 0.45,
                 cooldown: int = 10,
                 hysteresis: int = 1,
                 registry: Optional[Registry] = None) -> None:
        if window < 2 or cooldown < 0:
            raise SchedulingError("window must be >= 2, cooldown >= 0")
        if not 0 < slack_fraction < pressure_fraction <= 1.5:
            raise SchedulingError("need 0 < slack < pressure <= 1.5")
        if hysteresis < 1:
            raise SchedulingError("hysteresis must be >= 1")
        self.manager = manager or ChironManager()
        self.window = window
        self.pressure_fraction = pressure_fraction
        self.slack_fraction = slack_fraction
        self.cooldown = cooldown
        self.hysteresis = hysteresis
        self.metrics = registry if registry is not None else Registry()
        self._latencies: Deque[float] = deque(maxlen=window)
        self._since_refresh = 0
        self._requests_seen = 0
        self._breach_streak = 0
        self.deployment: Optional[Deployment] = None
        self.events: list[AdaptationEvent] = []
        #: refreshes that failed scheduling and kept the incumbent plan
        self.refresh_failures = 0

    # -- lifecycle ------------------------------------------------------------
    def deploy(self, workflow: Workflow, slo_ms: float) -> Deployment:
        self.deployment = self.manager.deploy(workflow, slo_ms)
        self._latencies.clear()
        self._since_refresh = 0
        return self.deployment

    @property
    def slo_ms(self) -> float:
        if self.deployment is None or self.deployment.plan.slo_ms is None:
            raise SchedulingError("no active deployment with an SLO")
        return self.deployment.plan.slo_ms

    # -- the monitoring loop -----------------------------------------------------
    def observe(self, latency_ms: float,
                current_workflow: Optional[Workflow] = None
                ) -> Optional[AdaptationEvent]:
        """Feed one measured request latency; maybe refresh.

        ``current_workflow`` carries the *present* behaviours (drifted
        functions); defaults to the originally-deployed workflow.
        """
        if self.deployment is None:
            raise SchedulingError("observe() before deploy()")
        self._latencies.append(latency_ms)
        self._requests_seen += 1
        self._since_refresh += 1
        if (len(self._latencies) < self.window
                or self._since_refresh <= self.cooldown):
            return None
        p90 = percentile(list(self._latencies), 90)
        mean = sum(self._latencies) / len(self._latencies)
        slo = self.slo_ms
        reason: Optional[str] = None
        if p90 > self.pressure_fraction * slo:
            reason = "slo-pressure"
        elif mean < self.slack_fraction * slo:
            reason = "over-provisioned"
        if reason is None:
            self._breach_streak = 0
            return None
        self._breach_streak += 1
        if self._breach_streak < self.hysteresis:
            return None
        return self.refresh(reason, p90, current_workflow=current_workflow)

    def refresh(self, reason: str, p90_ms: float,
                current_workflow: Optional[Workflow] = None
                ) -> Optional[AdaptationEvent]:
        """Re-profile and re-plan; the incumbent survives a failed refresh.

        A drifted workload can be genuinely unschedulable (PGP cannot meet
        the SLO at any partitioning) — that must degrade the *adaptation*,
        not crash the serving loop, so a :class:`SchedulingError` keeps the
        incumbent deployment, counts ``adaptation.refresh_failed``, and
        re-enters the cooldown before the next attempt.
        """
        if self.deployment is None:
            raise SchedulingError("refresh() before deploy()")
        workflow = current_workflow or self.deployment.workflow
        old_cores = self.deployment.plan.total_cores
        slo = self.slo_ms
        self._latencies.clear()
        self._since_refresh = 0
        self._breach_streak = 0
        try:
            refreshed = self.manager.deploy(workflow, slo)
        except SchedulingError:
            self.refresh_failures += 1
            self.metrics.inc("adaptation.refresh_failed")
            return None
        self.deployment = refreshed
        self.metrics.inc("adaptation.refreshes")
        event = AdaptationEvent(request_index=self._requests_seen,
                                reason=reason, p90_ms=p90_ms,
                                old_cores=old_cores,
                                new_cores=self.deployment.plan.total_cores)
        self.events.append(event)
        return event
