"""Adaptive deployment: periodic re-profiling and re-planning (§3.4).

"The Profiler and PGP are re-run periodically to update wraps, enabling
them to adapt to changes in the workload."  The :class:`AdaptiveDeployer`
implements that loop: it watches a window of measured request latencies and
triggers a refresh when the deployment has drifted out of spec —

* **SLO pressure**: the windowed p90 approaches/exceeds the SLO (the
  workload got heavier; more processes/wraps are needed), or
* **over-provisioning**: the windowed mean sits far below the SLO (the
  workload got lighter; CPUs can be reclaimed).

Refreshing re-profiles the *current* workflow behaviours, so drifted
functions are re-measured exactly as on the real system.

Refreshes reuse the manager's predictor and its
:class:`~repro.core.predictor.PredictionCache`: stages whose behaviours did
not drift fingerprint identically and are served from cache, so the cost of
a refresh scales with how much of the workflow actually changed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from repro.core.manager import ChironManager, Deployment
from repro.errors import SchedulingError
from repro.metrics.stats import percentile
from repro.workflow.model import Workflow


@dataclass
class AdaptationEvent:
    """One refresh decision, for auditing."""

    request_index: int
    reason: str               # "slo-pressure" | "over-provisioned"
    p90_ms: float
    old_cores: int
    new_cores: int


class AdaptiveDeployer:
    """Wraps a :class:`ChironManager` with a drift-triggered refresh loop."""

    def __init__(self, manager: Optional[ChironManager] = None, *,
                 window: int = 20,
                 pressure_fraction: float = 0.95,
                 slack_fraction: float = 0.45,
                 cooldown: int = 10) -> None:
        if window < 2 or cooldown < 0:
            raise SchedulingError("window must be >= 2, cooldown >= 0")
        if not 0 < slack_fraction < pressure_fraction <= 1.5:
            raise SchedulingError("need 0 < slack < pressure <= 1.5")
        self.manager = manager or ChironManager()
        self.window = window
        self.pressure_fraction = pressure_fraction
        self.slack_fraction = slack_fraction
        self.cooldown = cooldown
        self._latencies: Deque[float] = deque(maxlen=window)
        self._since_refresh = 0
        self._requests_seen = 0
        self.deployment: Optional[Deployment] = None
        self.events: list[AdaptationEvent] = []

    # -- lifecycle ------------------------------------------------------------
    def deploy(self, workflow: Workflow, slo_ms: float) -> Deployment:
        self.deployment = self.manager.deploy(workflow, slo_ms)
        self._latencies.clear()
        self._since_refresh = 0
        return self.deployment

    @property
    def slo_ms(self) -> float:
        if self.deployment is None or self.deployment.plan.slo_ms is None:
            raise SchedulingError("no active deployment with an SLO")
        return self.deployment.plan.slo_ms

    # -- the monitoring loop -----------------------------------------------------
    def observe(self, latency_ms: float,
                current_workflow: Optional[Workflow] = None
                ) -> Optional[AdaptationEvent]:
        """Feed one measured request latency; maybe refresh.

        ``current_workflow`` carries the *present* behaviours (drifted
        functions); defaults to the originally-deployed workflow.
        """
        if self.deployment is None:
            raise SchedulingError("observe() before deploy()")
        self._latencies.append(latency_ms)
        self._requests_seen += 1
        self._since_refresh += 1
        if (len(self._latencies) < self.window
                or self._since_refresh <= self.cooldown):
            return None
        p90 = percentile(list(self._latencies), 90)
        mean = sum(self._latencies) / len(self._latencies)
        slo = self.slo_ms
        reason: Optional[str] = None
        if p90 > self.pressure_fraction * slo:
            reason = "slo-pressure"
        elif mean < self.slack_fraction * slo:
            reason = "over-provisioned"
        if reason is None:
            return None
        workflow = current_workflow or self.deployment.workflow
        old_cores = self.deployment.plan.total_cores
        self.deployment = self.manager.deploy(workflow, slo)
        event = AdaptationEvent(request_index=self._requests_seen,
                                reason=reason, p90_ms=p90,
                                old_cores=old_cores,
                                new_cores=self.deployment.plan.total_cores)
        self.events.append(event)
        self._latencies.clear()
        self._since_refresh = 0
        return event
