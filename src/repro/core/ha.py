"""Workflow high availability: stage checkpoints, replay, hot standbys.

Chiron's m-to-n wraps concentrate a whole workflow into a handful of
sandboxes on a handful of machines, so one ``machine.crash`` can take the
entire request with it.  This module is the recovery side of the
machine-scale failure model (:mod:`repro.faults.domains`):

* :class:`HAPolicy` — how a workflow survives machine death: ``retry``
  (re-offer the whole request, no state), ``checkpoint`` (persist a
  per-stage completion manifest through :mod:`repro.runtime.storage` and
  replay only the incomplete stages), or ``standby`` (checkpoints plus a
  hot standby for every wrap, priced honestly as doubled memory and a
  lifecycle boot tier for the failover);
* :class:`HASession` — the per-request ledger installed as ``env.ha`` by
  ``Platform.run``; the platform commits a checkpoint after every stage
  barrier (paying the real storage put, through the same fault hooks as any
  other storage op) and asks it where to resume on replay;
* :func:`ha_adjusted_p99_ms` — the predictor-backed fault-adjusted tail:
  Eq. (1)'s latency plus checkpoint overhead plus, when machine kills are
  frequent enough to surface at p99, the re-boot + replay cost of the
  chosen HA mode.

Everything is priced, nothing is free: checkpoints burn storage latency on
every stage, standbys burn memory, and replay burns the boot tier of
whatever machine picks the work up.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator, Optional

from repro.calibration import (MINIO_BANDWIDTH_MB_PER_MS,
                               MINIO_BASE_LATENCY_MS, RuntimeCalibration)
from repro.errors import FaultError, SimulationError
from repro.lifecycle.policy import BootTier, boot_cost_ms
from repro.simcore import Environment, Event

#: recognised HA modes, weakest first
HA_MODES = ("none", "retry", "checkpoint", "standby")

#: typed events the HA layer adds to traces (golden-trace schema)
HA_EVENT_TYPES = ("ha.checkpoint", "ha.checkpoint.lost", "ha.restore",
                  "ha.failover")

#: counters the HA layer increments (also schema-pinned)
HA_COUNTERS = ("ha.checkpoints", "ha.checkpoints.lost", "ha.restores",
               "ha.replayed_stages", "ha.failovers")


@dataclass(frozen=True)
class HAPolicy:
    """How a workflow request survives machine-scale failure.

    ``checkpoint_mb`` is the per-stage completion manifest (stage index,
    wrap outputs' object keys) persisted through the object store —
    intermediate *data* already lives there under 1-to-1 deployment, so the
    manifest is small but never free.  ``standby_tier`` is the lifecycle
    tier a hot standby serves its failover boot from (WARM = the standby
    sandbox is resident; SNAPSHOT = only its image is).
    """

    mode: str = "checkpoint"
    checkpoint_mb: float = 0.25
    standby_tier: BootTier = BootTier.WARM

    def __post_init__(self) -> None:
        if self.mode not in HA_MODES:
            raise SimulationError(
                f"unknown HA mode {self.mode!r}; expected one of {HA_MODES}")
        if self.checkpoint_mb < 0:
            raise SimulationError(
                f"checkpoint_mb must be >= 0, got {self.checkpoint_mb}")

    # -- derived views ---------------------------------------------------------
    @property
    def checkpointed(self) -> bool:
        """True when stage completion is persisted (checkpoint/standby)."""
        return self.mode in ("checkpoint", "standby")

    def checkpoint_op_ms(self) -> float:
        """Closed-form cost of one checkpoint put/get (MinIO profile)."""
        if not self.checkpointed:
            return 0.0
        return MINIO_BASE_LATENCY_MS + self.checkpoint_mb / MINIO_BANDWIDTH_MB_PER_MS

    def reboot_ms(self, cal: RuntimeCalibration) -> float:
        """Boot cost a displaced wrap pays on its replacement machine.

        Standbys failover at their standby tier; everything else re-boots
        cold — the replacement machine has nothing warm for this workflow.
        """
        tier = self.standby_tier if self.mode == "standby" else BootTier.COLD
        return boot_cost_ms(tier, cal)

    def standby_memory_mb(self, deployed_mb: float) -> float:
        """Extra resident memory the mode holds: a hot standby duplicates
        every wrap's sandbox, anything else costs nothing extra."""
        return deployed_mb if self.mode == "standby" else 0.0


class HASession:
    """Per-request HA ledger, installed as ``env.ha``.

    The platform calls :meth:`restore` before its stage loop (returns the
    first stage still to run) and :meth:`commit_stage` after each stage
    barrier.  Checkpoint persistence rides the real
    :class:`~repro.runtime.storage.StorageService` path, so it consumes
    simulated time *and* is itself subject to storage faults — a lost
    checkpoint silently degrades to replaying one extra stage, exactly like
    the real thing.
    """

    def __init__(self, env: Environment, policy: HAPolicy, *,
                 storage=None, trace=None, resume_from: int = 0) -> None:
        from repro.obs.metrics import Registry
        from repro.runtime.storage import StorageService

        if resume_from < 0:
            raise SimulationError(
                f"resume_from must be >= 0, got {resume_from}")
        self.env = env
        self.policy = policy
        self.trace = trace
        self.metrics = (trace.metrics if trace is not None
                        and hasattr(trace, "metrics") else Registry())
        self.storage = (storage if storage is not None
                        else StorageService.minio(env, trace))
        #: stage to resume from (0 = fresh request; k = stages < k replayed
        #: from checkpoints, set by the serving loop after a machine death)
        self.resume_from = resume_from
        #: highest stage index whose checkpoint was durably committed
        self.committed_stage = resume_from - 1
        self.checkpoints = 0
        self.checkpoints_lost = 0
        self.restores = 0
        self.checkpoint_ms = 0.0
        self.restore_ms = 0.0

    def _emit(self, name: str, counter: str, **tags: object) -> None:
        self.metrics.inc(counter)
        if self.trace is not None:
            self.trace.event(name, entity="ha", **tags)

    # -- platform hooks --------------------------------------------------------
    def restore(self) -> Generator[Event, None, int]:
        """Read the completion manifest; returns the first stage to run.

        Fresh requests (``resume_from == 0``) skip the read entirely.  A
        failed manifest read falls back to replaying the whole workflow —
        losing the manifest must never lose the request.
        """
        if self.resume_from <= 0 or not self.policy.checkpointed:
            return max(self.resume_from, 0) if self.policy.checkpointed else 0
        t0 = self.env.now
        try:
            yield from self.storage.get(self.policy.checkpoint_mb,
                                        entity="ha-manifest")
        except FaultError:
            self.resume_from = 0
            self.committed_stage = -1
            return 0
        self.restores += 1
        self.restore_ms += self.env.now - t0
        self._emit("ha.restore", "ha.restores", stage=self.resume_from,
                   at_ms=self.env.now)
        return self.resume_from

    def commit_stage(self, stage_index: int) -> Generator[Event, None, None]:
        """Persist stage completion; called after each stage barrier."""
        if not self.policy.checkpointed:
            return
        t0 = self.env.now
        try:
            yield from self.storage.put(self.policy.checkpoint_mb,
                                        entity=f"ha-ckpt-s{stage_index}")
        except FaultError:
            # the stage still completed; a later crash just replays it
            self.checkpoints_lost += 1
            self._emit("ha.checkpoint.lost", "ha.checkpoints.lost",
                       stage=stage_index, at_ms=self.env.now)
            return
        self.committed_stage = stage_index
        self.checkpoints += 1
        self.checkpoint_ms += self.env.now - t0
        self._emit("ha.checkpoint", "ha.checkpoints", stage=stage_index,
                   at_ms=self.env.now)

    # -- ledger ----------------------------------------------------------------
    def summary(self) -> dict:
        return {
            "mode": self.policy.mode,
            "resume_from": self.resume_from,
            "committed_stage": self.committed_stage,
            "checkpoints": self.checkpoints,
            "checkpoints_lost": self.checkpoints_lost,
            "restores": self.restores,
            "checkpoint_ms": round(self.checkpoint_ms, 6),
            "restore_ms": round(self.restore_ms, 6),
        }


# ---------------------------------------------------------------------------
# fault-adjusted tail prediction
# ---------------------------------------------------------------------------

#: tail percentile the adjustment targets (p99 -> 1% residual mass), matching
#: repro.faults.reliability
_TAIL_RESIDUAL = 0.01


def ha_adjusted_p99_ms(predictor, workflow, plan, policy: HAPolicy, *,
                       kill_rate_per_min: float) -> float:
    """Machine-fault-adjusted p99 estimate for ``plan`` under ``policy``.

    The base is Eq. (1)'s per-stage predictions plus the policy's per-stage
    checkpoint overhead (checkpoints are paid on *every* request, faulted or
    not).  When the probability of >= 1 machine kill during the request
    clears the 1% tail mass, the p99 additionally pays one recovery:

    * ``none`` — the request is lost; the p99 is unbounded (``inf``);
    * ``retry`` — re-boot (cold) + replay of the whole workflow;
    * ``checkpoint`` — re-boot (cold) + manifest read + replay of the one
      interrupted stage (worst case: the longest stage);
    * ``standby`` — failover boot at the standby tier + manifest read +
      replay of the longest stage.

    This is the HA analogue of
    :func:`repro.faults.reliability.adjusted_p99_ms` (which prices
    intra-sandbox faults); the two compose by addition since their fault
    sources are independent.
    """
    if kill_rate_per_min < 0:
        raise SimulationError(
            f"kill rate must be >= 0, got {kill_rate_per_min}")
    stage_ms = [predictor.predict_stage(plan, workflow, i)
                for i in range(len(workflow.stages))]
    ckpt_ms = policy.checkpoint_op_ms()
    base = sum(stage_ms) + ckpt_ms * len(stage_ms)
    if kill_rate_per_min == 0.0:
        return base
    p_kill = 1.0 - math.exp(-kill_rate_per_min * base / 60_000.0)
    if p_kill < _TAIL_RESIDUAL:
        return base
    if policy.mode == "none":
        return math.inf
    reboot = policy.reboot_ms(predictor.cal)
    if policy.mode == "retry":
        replay = sum(stage_ms) + ckpt_ms * len(stage_ms)
    else:
        replay = max(stage_ms) + ckpt_ms * 2  # manifest read + re-commit
    return base + reboot + replay
