"""The white-box latency predictor (§3.3): Eq. (1)-(4) and Algorithm 1.

The predictor estimates the end-to-end latency of a workflow under a given
:class:`~repro.core.wrap.DeploymentPlan` without running it:

* Eq. (1): workflow latency = sum of stage latencies;
* Eq. (2): stage latency = slowest wrap, where wraps beyond the first pay
  the invocation overhead ``(k-1) * T_INV`` plus one RPC;
* Eq. (3): wrap latency = slowest process + pipe IPC pairs;
* Eq. (4): process latency = serialized fork block + interpreter startup +
  multi-thread execution time;
* Algorithm 1: the multi-thread execution time is obtained by *replaying*
  GIL switching over the profiled CPU/block periods — the main thread spawns
  a batch of threads per switch interval, the holder computes in at most
  interval-sized chunks, drops the lock on blocking I/O, and the next holder
  is the non-blocked thread with minimum accumulated CPU time.

For no-GIL runtimes (Java, Figure 18) and process pools (the -P variants)
the replay generalizes to a fluid fair-share schedule on ``cores`` cores
with bounded concurrency.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Union

from repro.calibration import RuntimeCalibration
from repro.core.wrap import DeploymentPlan, ExecMode, StageAssignment
from repro.errors import DeploymentError
from repro.workflow.behavior import FunctionBehavior, SegmentKind
from repro.workflow.model import Workflow

_EPS = 1e-9

#: every counter the incremental prediction engine increments (pinned by the
#: golden-trace schema, mirroring ``repro.overload.OVERLOAD_COUNTERS``)
PGP_COUNTERS = (
    "pgp.cache.hit",
    "pgp.cache.miss",
    "pgp.cache.invalidations",
    "pgp.evals.full",
    "pgp.evals.delta",
    "pgp.kl.swaps.evaluated",
    "pgp.kl.swaps.pruned",
)


class PredictionCache:
    """Content-addressed memo of per-stage / per-group predictions.

    Keys are ``(kind, calibration id, fingerprint)`` triples built from the
    canonical fingerprints of :mod:`repro.core.wrap`,
    :meth:`repro.workflow.behavior.FunctionBehavior.fingerprint` and
    :meth:`repro.calibration.RuntimeCalibration.fingerprint` — every input
    the prediction depends on is *in* the key, so a drifted behaviour, a
    re-sized cpuset or a different calibration can never alias a stale
    entry.  That is the whole invalidation story: entries are immutable
    facts, :meth:`invalidate` exists only to bound memory or reset counters.

    One cache may safely back several predictors (different calibrations,
    conservatisms or GIL-handoff policies included — the calibration id
    covers the replay policy, and conservatism scales only workflow totals,
    which are never cached).

    ``enabled=False`` keeps the counters ticking while every lookup misses
    and nothing is stored — the full-evaluation baseline the benchmark
    harness compares against.  ``verify=True`` recomputes every hit and
    raises :class:`~repro.errors.DeploymentError` on the slightest
    disagreement — the bit-identity guard used by tests and the CI perf
    smoke.
    """

    def __init__(self, *, capacity: int = 65536, enabled: bool = True,
                 verify: bool = False,
                 registry: Optional["Registry"] = None) -> None:
        if capacity < 1:
            raise DeploymentError(f"cache capacity must be >= 1, "
                                  f"got {capacity}")
        from repro.obs.metrics import Registry

        self.capacity = capacity
        self.enabled = enabled
        self.verify = verify
        self.metrics = registry if registry is not None else Registry()
        self._entries: "OrderedDict[tuple, float]" = OrderedDict()
        #: guards the whole lookup-compute-insert sequence — portfolio
        #: search arms share one cache across threads.  Holding the lock
        #: across ``compute`` keeps hit/miss/full-eval counters exact and
        #: schedule-independent (each key is computed exactly once), and
        #: costs nothing in practice: predictions are pure CPU-bound
        #: Python, so the GIL serializes concurrent computes anyway.
        #: Reentrant because stage computes recurse into group-level
        #: ``get_or_compute`` calls (stage -> group only, never cycles).
        self._lock = threading.RLock()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hits(self) -> int:
        return int(self.metrics.counter("pgp.cache.hit").value)

    @property
    def misses(self) -> int:
        return int(self.metrics.counter("pgp.cache.miss").value)

    @property
    def full_evals(self) -> int:
        return int(self.metrics.counter("pgp.evals.full").value)

    @property
    def delta_evals(self) -> int:
        return int(self.metrics.counter("pgp.evals.delta").value)

    def get_or_compute(self, key: tuple,
                       compute: Callable[[], float]) -> tuple[float, bool]:
        """Return ``(value, came_from_cache)`` for ``key``.

        A miss runs ``compute`` (one full Algorithm-1/Eq.-(2)-(4)
        evaluation, counted as ``pgp.evals.full``) and stores the result.
        """
        if not self.enabled:
            value = compute()
            self.metrics.inc("pgp.cache.miss")
            self.metrics.inc("pgp.evals.full")
            return value, False
        entries = self._entries
        with self._lock:
            value = entries.get(key)
            if value is not None:
                entries.move_to_end(key)
                self.metrics.inc("pgp.cache.hit")
                if self.verify:
                    fresh = compute()
                    if fresh != value:
                        raise DeploymentError(
                            f"prediction cache divergence: cached {value!r} "
                            f"!= recomputed {fresh!r} for key kind "
                            f"{key[0]!r} — cache keys are missing an input")
                return value, True
            value = compute()
            self.metrics.inc("pgp.cache.miss")
            self.metrics.inc("pgp.evals.full")
            entries[key] = value
            if len(entries) > self.capacity:
                entries.popitem(last=False)
            return value, False

    def invalidate(self) -> None:
        """Drop every entry (memory bound / explicit reset).

        Correctness never requires calling this — keys are content-
        addressed — so the only reasons are reclaiming memory or starting a
        fresh measurement window.
        """
        self._entries.clear()
        self.metrics.inc("pgp.cache.invalidations")


class _Th:
    """Mutable per-thread replay state for Algorithm 1.

    When ``trace`` is set, the replay emits the thread's simulated timeline
    (exec/block spans at ``offset`` + replay time) into it — the predictor
    side of :mod:`repro.obs.divergence`.
    """

    __slots__ = ("segs", "idx", "off", "cpu_time", "blocked_until", "done",
                 "name", "trace", "offset", "finished_at")

    def __init__(self, behavior: FunctionBehavior, cal: RuntimeCalibration,
                 *, name: str = "t", trace=None, offset: float = 0.0):
        self.name = name
        self.trace = trace
        self.offset = offset
        self.finished_at: Optional[float] = None
        cpu_scale = 1.0 + cal.exec_overhead_cpu
        io_scale = 1.0 + cal.exec_overhead_io
        segs: list[tuple[SegmentKind, float]] = []
        if cal.isolation_startup_ms > 0:
            segs.append((SegmentKind.CPU, cal.isolation_startup_ms))
        for seg in behavior.merged():
            scale = cpu_scale if seg.kind is SegmentKind.CPU else io_scale
            segs.append((seg.kind, seg.duration_ms * scale))
        self.segs = segs
        self.idx = 0
        self.off = 0.0
        self.cpu_time = 0.0
        self.blocked_until: Optional[float] = None
        self.done = not segs

    def absorb(self, now: float) -> None:
        """Advance through zero-CPU-left and completed-IO segments."""
        while not self.done:
            if self.idx >= len(self.segs):
                self.done = True
                self.finished_at = now
                return
            kind, dur = self.segs[self.idx]
            remaining = dur - self.off
            if kind is SegmentKind.CPU:
                if remaining > _EPS:
                    return  # runnable
                self.idx += 1
                self.off = 0.0
            else:  # IO
                if self.blocked_until is None:
                    self.blocked_until = now + remaining
                    if self.trace is not None and remaining > _EPS:
                        self.trace.record(self.name, "block",
                                          self.offset + now,
                                          self.offset + self.blocked_until)
                    return  # just blocked
                if self.blocked_until <= now + _EPS:
                    self.idx += 1
                    self.off = 0.0
                    self.blocked_until = None
                    continue
                return  # still blocked

    @property
    def runnable(self) -> bool:
        return (not self.done and self.blocked_until is None
                and self.idx < len(self.segs)
                and self.segs[self.idx][0] is SegmentKind.CPU)


class LatencyPredictor:
    """Predicts workflow latency for a deployment plan.

    ``conservatism`` inflates final predictions; PGP uses a value > 1 so the
    plans it accepts keep a margin below the SLO (§6.2: "Chiron adopts larger
    parameters to estimate the latency, avoiding performance violation").

    ``cache`` controls the incremental-prediction engine: ``None`` (default)
    attaches a fresh private :class:`PredictionCache`; pass an existing
    cache to share warmth across predictors, or ``False`` to force full
    evaluation on every call.  Cached and uncached predictions are
    bit-identical — traced predictions (``trace=...``) always take the full
    path, since a cache hit has no timeline to replay.
    """

    def __init__(self, cal: Optional[RuntimeCalibration] = None, *,
                 conservatism: float = 1.0,
                 gil_handoff: str = "cfs",
                 cache: Union[None, bool, PredictionCache] = None) -> None:
        self.cal = cal or RuntimeCalibration.native()
        if conservatism <= 0:
            raise DeploymentError("conservatism must be > 0")
        if gil_handoff not in ("cfs", "fifo"):
            raise DeploymentError(f"unknown gil_handoff {gil_handoff!r}")
        self.conservatism = conservatism
        #: how Algorithm 1 picks the next GIL holder: "cfs" (min CPU time,
        #: the paper's line 17) or "fifo" (arrival order; ablation).
        self.gil_handoff = gil_handoff
        if cache is None or cache is True:
            cache = PredictionCache()
        elif cache is False:
            cache = None
        self.cache: Optional[PredictionCache] = cache
        #: lazily built (calibration fingerprint, GIL policy) cache-key part
        self._cal_token: Optional[tuple] = None

    def _calibration_token(self) -> tuple:
        """The calibration id every cache key carries (frozen per instance:
        ``cal`` and ``gil_handoff`` are never mutated after construction)."""
        token = self._cal_token
        if token is None:
            token = self._cal_token = (self.cal.fingerprint(),
                                       self.gil_handoff)
        return token

    # ------------------------------------------------------------------
    # Algorithm 1: multi-thread execution under the GIL
    # ------------------------------------------------------------------
    def predict_multithread_exec(
            self, behaviors: Sequence[FunctionBehavior], *,
            include_spawn: bool = True, trace=None,
            names: Optional[Sequence[str]] = None,
            t0: float = 0.0) -> float:
        """Wall time for ``behaviors`` running as threads of one process.

        With ``trace`` set, the replay also emits each thread's simulated
        timeline (startup/exec/block spans, offset by ``t0``) — consumed by
        the divergence reporter to compare mechanisms side by side with the
        runtime's trace of the same plan.
        """
        if not behaviors:
            return 0.0
        cal = self.cal
        if not cal.has_gil:
            # True-parallel threads: fall back to the fluid schedule with one
            # core per thread available inside the process's cpuset share.
            return self.predict_parallel_exec(behaviors, cores=len(behaviors),
                                              trace=trace, names=names, t0=t0)
        interval = cal.gil_switch_interval_ms
        spawn_cost = cal.thread_startup_ms if include_spawn else 0.0

        if trace is None:  # hot path: PGP's search never traces
            threads = [_Th(b, cal) for b in behaviors]
        else:
            threads = [_Th(b, cal,
                           name=(names[i] if names is not None else f"t{i}"),
                           trace=trace, offset=t0)
                       for i, b in enumerate(behaviors)]
        to_spawn = list(range(len(threads)))
        spawned: list[_Th] = []
        main_cpu_time = 0.0
        now = 0.0

        while True:
            for th in spawned:
                th.absorb(now)
            runnable = [th for th in spawned if th.runnable]
            main_ready = bool(to_spawn)
            if not runnable and not main_ready:
                pending = [th.blocked_until for th in spawned
                           if not th.done and th.blocked_until is not None]
                if pending:
                    now = min(pending)
                    continue
                break  # all threads over (Alg. 1 lines 12-13)

            min_thread_cpu = min((th.cpu_time for th in runnable),
                                 default=math.inf)
            if main_ready and main_cpu_time <= min_thread_cpu:
                # Main-thread turn: start y functions in one interval
                # (Alg. 1 lines 4-5).
                if spawn_cost <= 0:
                    spawned.extend(threads[i] for i in to_spawn)
                    to_spawn.clear()
                    continue
                batch = max(1, int(interval // spawn_cost))
                batch = min(batch, len(to_spawn))
                cost = batch * spawn_cost
                for b in range(batch):
                    th = threads[to_spawn.pop(0)]
                    spawned.append(th)
                    if trace is not None:
                        trace.record(th.name, "startup",
                                     t0 + now + b * spawn_cost,
                                     t0 + now + (b + 1) * spawn_cost,
                                     op="thread.spawn")
                now += cost
                main_cpu_time += cost
                continue

            # Function turn (Alg. 1 lines 7-17): run continuously until the
            # switch interval elapses, a block op occurs, or the function
            # finishes.
            if self.gil_handoff == "cfs":
                th = min(runnable, key=lambda t: t.cpu_time)
            else:  # fifo ablation: oldest spawned runnable thread
                th = runnable[0]
            budget = interval
            ran = 0.0
            while budget > _EPS and not th.done:
                if th.idx >= len(th.segs):
                    th.done = True
                    th.finished_at = now + ran
                    break
                kind, dur = th.segs[th.idx]
                if kind is not SegmentKind.CPU:
                    break  # block op: T_avl consumed, GIL dropped
                step = min(dur - th.off, budget)
                th.off += step
                ran += step
                budget -= step
                if th.off >= dur - _EPS:
                    th.idx += 1
                    th.off = 0.0
            if trace is not None and ran > _EPS:
                trace.record(th.name, "exec", t0 + now, t0 + now + ran)
            now += ran
            th.cpu_time += ran
            th.absorb(now)
        return now

    def predict_exec_canonical(
            self, behaviors: Sequence[FunctionBehavior]) -> float:
        """Algorithm-1 execution time of a *multiset* of behaviours, cached.

        PGP's Kernighan-Lin pass evaluates the same thread groups — up to
        permutation — thousands of times across swaps, stages, ``n``
        candidates and SLO sweeps.  The replay's outcome is treated as
        order-invariant by that search (equal-behaviour swaps must be
        no-ops), so behaviours are sorted into a canonical order *before*
        replaying: permutations share one cache entry, and cached vs.
        uncached evaluation run the exact same replay — bit-identical by
        construction.
        """
        if not behaviors:
            return 0.0
        ordered = sorted(behaviors, key=lambda b: b.fingerprint())
        if self.cache is None:
            return self.predict_multithread_exec(ordered)
        key = ("exec", self._calibration_token(),
               tuple(b.fingerprint() for b in ordered))
        value, _hit = self.cache.get_or_compute(
            key, lambda: self.predict_multithread_exec(ordered))
        return value

    # ------------------------------------------------------------------
    # Fluid fair-share schedule (no-GIL threads, process pools)
    # ------------------------------------------------------------------
    def predict_parallel_exec(
            self, behaviors: Sequence[FunctionBehavior], *, cores: float,
            max_concurrent: Optional[int] = None,
            start_offsets: Optional[Sequence[float]] = None,
            trace=None, names: Optional[Sequence[str]] = None,
            t0: float = 0.0) -> float:
        """Wall time for true-parallel tasks sharing ``cores`` cores.

        ``max_concurrent`` bounds simultaneously admitted tasks (pool
        workers); ``start_offsets`` stagger task arrivals (fork block /
        dispatch serialization).  ``trace`` captures the fluid replay's
        per-task timeline (see :meth:`predict_multithread_exec`).
        """
        if not behaviors:
            return 0.0
        if cores <= 0:
            raise DeploymentError(f"cores must be > 0, got {cores}")
        cal = self.cal
        n = len(behaviors)
        offsets = list(start_offsets) if start_offsets is not None else [0.0] * n
        if len(offsets) != n:
            raise DeploymentError("start_offsets length mismatch")
        if trace is None:  # hot path: PGP's search never traces
            tasks = [_Th(b, cal) for b in behaviors]
        else:
            tasks = [_Th(b, cal,
                         name=(names[i] if names is not None else f"t{i}"),
                         trace=trace, offset=t0)
                     for i, b in enumerate(behaviors)]
        admitted: list[_Th] = []
        waiting = sorted(range(n), key=lambda i: (offsets[i], i))
        slots = max_concurrent if max_concurrent is not None else n
        now = 0.0

        def active_count() -> int:
            return sum(1 for t in admitted if not t.done)

        while True:
            # admit arrivals whose offset has passed and a slot is free
            while (waiting and offsets[waiting[0]] <= now + _EPS
                   and active_count() < slots):
                admitted.append(tasks[waiting.pop(0)])
            for t in admitted:
                t.absorb(now)
            running = [t for t in admitted if t.runnable]
            blocked = [t.blocked_until for t in admitted
                       if not t.done and t.blocked_until is not None]
            if not running:
                horizons = list(blocked)
                if waiting and active_count() < slots:
                    horizons.append(offsets[waiting[0]])
                if not horizons:
                    break  # everything finished
                now = max(now, min(horizons))
                continue
            rate = min(1.0, cores / len(running))
            horizon = min((t.segs[t.idx][1] - t.off) / rate for t in running)
            if blocked:
                horizon = min(horizon, min(blocked) - now)
            if waiting and active_count() < slots:
                horizon = min(horizon, offsets[waiting[0]] - now)
            horizon = max(horizon, _EPS)
            for t in running:
                t.off += horizon * rate
                t.cpu_time += horizon * rate
            now += horizon
        return now

    # ------------------------------------------------------------------
    # Eq. (4): one process of a wrap
    # ------------------------------------------------------------------
    def _exec_ordered(self, behaviors: Sequence[FunctionBehavior]) -> float:
        """Untraced Algorithm-1 replay memoized on the *ordered* behaviour
        fingerprints.

        Unlike :meth:`predict_exec_canonical` this never reorders — it
        returns exactly what :meth:`predict_multithread_exec` would, so the
        stage predictions composed from it stay bit-identical to uncached
        evaluation.  Repacking re-simulates the same process groups under
        every wrap-count cap; this memo collapses those replays to one.
        """
        if self.cache is None:
            return self.predict_multithread_exec(behaviors)
        key = ("exec-ordered", self._calibration_token(),
               tuple(b.fingerprint() for b in behaviors))
        value, _hit = self.cache.get_or_compute(
            key, lambda: self.predict_multithread_exec(behaviors))
        return value

    def predict_process(self, behaviors: Sequence[FunctionBehavior], *,
                        fork_position: int, trace=None,
                        names: Optional[Sequence[str]] = None,
                        proc_entity: Optional[str] = None,
                        t0: float = 0.0) -> float:
        """Latency of the ``fork_position``-th forked process (1-based).

        ``fork_position=0`` means the group runs as threads of the resident
        orchestrator process: no fork block, no interpreter startup.  With
        ``trace`` set, the fork wait and interpreter startup are recorded on
        ``proc_entity`` ahead of the thread replay's own spans.
        """
        cal = self.cal
        if fork_position <= 0:
            if trace is None:
                return self._exec_ordered(behaviors)
            return self.predict_multithread_exec(behaviors, trace=trace,
                                                 names=names, t0=t0)
        wait = (fork_position - 1) * cal.fork_block_ms
        if trace is not None:
            ent = proc_entity or f"proc-{fork_position - 1}"
            # One fork-syscall-sized span per child (mirrors the runtime's
            # per-child record, so mechanism totals align side to side).
            trace.record(ent, "fork", t0 + wait,
                         t0 + wait + cal.fork_block_ms, op="fork")
            trace.record(ent, "startup", t0 + wait,
                         t0 + wait + cal.process_startup_ms,
                         op="proc.startup")
        if trace is None:
            exec_ms = self._exec_ordered(behaviors)
        else:
            exec_ms = self.predict_multithread_exec(
                behaviors, trace=trace, names=names,
                t0=t0 + wait + cal.process_startup_ms)
        return wait + cal.process_startup_ms + exec_ms

    def _ipc_ms(self, assignment: StageAssignment,
                workflow: Workflow) -> float:
        """Eq. (3)'s IPC term, matching the runtime's ``ipc_collect``:
        ``t_ipc`` per interaction pair plus streaming every function's output
        through the pipe (paid even by a single process collecting results).
        """
        pairs = max(0, len(assignment.processes) - 1)
        if not pairs:
            return 0.0
        data_mb = sum(workflow.function(n).behavior.data_out_mb
                      for n in assignment.function_names)
        return (self.cal.t_ipc_ms * pairs
                + data_mb / self.cal.pipe_bandwidth_mb_per_ms)

    # ------------------------------------------------------------------
    # non-uniform CPU sharing within a wrap (§4 / Figure 7's motivation)
    # ------------------------------------------------------------------
    def predict_wrap_stage_shared(self, assignment: StageAssignment,
                                  workflow: Workflow, cores: float, *,
                                  trace=None,
                                  entity_prefix: Optional[str] = None,
                                  t0: float = 0.0) -> float:
        """Wrap-stage latency when its processes share ``cores`` CPUs.

        Each forked group is folded to one task (its Algorithm-1 execution
        replayed as a single thread-of-work) staggered by its fork position;
        a thread group becomes one task whose CPU demand is its Algorithm-1
        execution time.  The fluid schedule then spreads the tasks over the
        cpuset — the "combined true and pseudo-parallelism" of Observation 4
        that lets Chiron allocate fewer CPUs than processes.
        """
        cal = self.cal
        behaviors_of = lambda names: [workflow.function(n).behavior
                                      for n in names]
        prefix = entity_prefix or "wrap"
        tasks: list[FunctionBehavior] = []
        offsets: list[float] = []
        task_names: list[str] = []
        n_forked = len(assignment.forked_processes)
        fork_j = 0
        for proc in assignment.processes:
            # Folded groups lose per-function identity; name the task after
            # the group so divergence can still match singleton groups.
            task_names.append("+".join(proc.functions))
            group = behaviors_of(proc.functions)
            exec_ms = self._exec_ordered(group)
            io_ms = min(b.io_ms for b in group) if len(group) == 1 else 0.0
            # preserve the group's IO share so blocked time frees cores
            cpu_ms = max(exec_ms - io_ms, 0.0)
            if proc.mode is ExecMode.PROCESS:
                # interpreter startup is CPU work that competes inside the
                # shared cpuset, not free waiting
                cpu_ms += cal.process_startup_ms
            # predict_parallel_exec re-applies the calibration's isolation
            # execution overheads; exec_ms already includes them, so
            # pre-divide to avoid double counting.
            cpu_ms /= 1.0 + cal.exec_overhead_cpu
            io_ms /= 1.0 + cal.exec_overhead_io
            segs = ([("cpu", cpu_ms)] if io_ms <= 0
                    else [("cpu", cpu_ms), ("io", io_ms)])
            tasks.append(FunctionBehavior.of(*segs))
            if proc.mode is ExecMode.THREAD:
                offsets.append(n_forked * cal.fork_block_ms)
            else:
                fork_j += 1
                offsets.append((fork_j - 1) * cal.fork_block_ms)
        total = self.predict_parallel_exec(tasks, cores=cores,
                                           start_offsets=offsets,
                                           trace=trace, names=task_names,
                                           t0=t0)
        ipc_ms = self._ipc_ms(assignment, workflow)
        if trace is not None and ipc_ms > _EPS:
            trace.record(f"{prefix}-ipc-s{assignment.stage_index}", "ipc",
                         t0 + total, t0 + total + ipc_ms, op="ipc")
        return total + ipc_ms

    # ------------------------------------------------------------------
    # Eq. (3): one wrap within one stage
    # ------------------------------------------------------------------
    def predict_wrap_stage(self, assignment: StageAssignment,
                           workflow: Workflow, *, trace=None,
                           entity_prefix: Optional[str] = None,
                           t0: float = 0.0) -> float:
        """Latency of one wrap's share of a stage.

        Traced entities mirror the runtime's naming (``{wrap}-s{i}-{j}``
        fork children, ``{wrap}-ipc-s{i}`` pipes, plain function names for
        threads) so the divergence reporter can align the two timelines.
        """
        behaviors_of = lambda names: [workflow.function(n).behavior
                                      for n in names]
        prefix = entity_prefix or "wrap"
        n_forked = len(assignment.forked_processes)
        latencies = []
        fork_j = 0
        for proc in assignment.processes:
            if proc.mode is ExecMode.THREAD:
                # Orchestrator thread groups start after the orchestrator
                # finished issuing all forks (forks come first, Figure 9).
                start = n_forked * self.cal.fork_block_ms
                latencies.append(
                    start + self.predict_process(
                        behaviors_of(proc.functions), fork_position=0,
                        trace=trace, names=list(proc.functions),
                        t0=t0 + start))
            else:
                fork_j += 1
                latencies.append(self.predict_process(
                    behaviors_of(proc.functions), fork_position=fork_j,
                    trace=trace, names=list(proc.functions),
                    proc_entity=(
                        f"{prefix}-s{assignment.stage_index}-{fork_j - 1}"),
                    t0=t0))
        ipc_ms = self._ipc_ms(assignment, workflow)
        if trace is not None and ipc_ms > _EPS:
            trace.record(f"{prefix}-ipc-s{assignment.stage_index}", "ipc",
                         t0 + max(latencies), t0 + max(latencies) + ipc_ms,
                         op="ipc")
        return max(latencies) + ipc_ms

    def _predict_pool_stage(self, plan: DeploymentPlan, workflow: Workflow,
                            stage_index: int, *, trace=None,
                            t0: float = 0.0) -> float:
        """Pool-mode stage latency: dispatch stagger + bounded concurrency."""
        parts = plan.stage_wraps(stage_index)
        worst = 0.0
        for k, (wrap, sa) in enumerate(parts):
            names = list(sa.function_names)
            behaviors = [workflow.function(n).behavior for n in names]
            offsets = [i * self.cal.pool_dispatch_ms
                       for i in range(len(behaviors))]
            shift = (k * self.cal.t_inv_ms + self.cal.t_rpc_ms) if k else 0.0
            if trace is not None and k > 0:
                trace.record(wrap.name, "rpc",
                             t0 + k * self.cal.t_inv_ms, t0 + shift, op="rpc")
            if trace is not None:
                pd = self.cal.pool_dispatch_ms
                for i in range(len(behaviors)):
                    trace.record(f"{wrap.name}/orch/main", "startup",
                                 t0 + shift + i * pd,
                                 t0 + shift + (i + 1) * pd,
                                 op="pool.dispatch")
            t = self.predict_parallel_exec(
                behaviors, cores=plan.cores_for(wrap),
                max_concurrent=plan.pool_workers or None,
                start_offsets=offsets, trace=trace, names=names,
                t0=t0 + shift)
            worst = max(worst, t + shift)
        return worst

    # ------------------------------------------------------------------
    # Eq. (2): one stage
    # ------------------------------------------------------------------
    def _wrap_part_latency(self, plan: DeploymentPlan, wrap,
                           sa: StageAssignment, workflow: Workflow, *,
                           trace=None, t0: float = 0.0) -> float:
        """One wrap's stage latency, honouring its CPU allocation."""
        needed = (len(sa.forked_processes)
                  + (1 if sa.thread_groups else 0))
        cores = plan.cores_for(wrap)
        if cores < needed:
            return self.predict_wrap_stage_shared(
                sa, workflow, cores, trace=trace, entity_prefix=wrap.name,
                t0=t0)
        return self.predict_wrap_stage(sa, workflow, trace=trace,
                                       entity_prefix=wrap.name, t0=t0)

    def predict_stage(self, plan: DeploymentPlan, workflow: Workflow,
                      stage_index: int, *, trace=None,
                      t0: float = 0.0) -> float:
        """One stage's latency; memoized per stage fingerprint.

        Untraced predictions are served from the stage-level cache (stage
        latency is independent of ``t0`` — offsets only shift trace spans),
        so re-evaluating a plan after a single-stage edit — a KL swap, a
        repack, a cpuset shrink — re-simulates only the touched stage.
        """
        if trace is None and self.cache is not None:
            value, _hit = self._predict_stage_cached(plan, workflow,
                                                     stage_index)
            return value
        return self._predict_stage_full(plan, workflow, stage_index,
                                        trace=trace, t0=t0)

    def _predict_stage_cached(self, plan: DeploymentPlan, workflow: Workflow,
                              stage_index: int) -> tuple[float, bool]:
        key = ("stage", self._calibration_token(),
               plan.stage_fingerprint(stage_index, workflow))
        return self.cache.get_or_compute(
            key,
            lambda: self._predict_stage_full(plan, workflow, stage_index))

    def _predict_stage_full(self, plan: DeploymentPlan, workflow: Workflow,
                            stage_index: int, *, trace=None,
                            t0: float = 0.0) -> float:
        parts = plan.stage_wraps(stage_index)
        if not parts:
            raise DeploymentError(f"no wrap covers stage {stage_index}")
        if plan.pool_workers > 0:
            return self._predict_pool_stage(plan, workflow, stage_index,
                                            trace=trace, t0=t0)
        first = self._wrap_part_latency(plan, parts[0][0], parts[0][1],
                                        workflow, trace=trace, t0=t0)
        rest = 0.0
        for k, (wrap, sa) in enumerate(parts[1:], start=2):
            # Sibling wraps start after (k-1) async submissions plus the
            # gateway RPC; shifting their t0 by t_rpc up front is arithmetic-
            # ally the same as Eq. 2's "+ T_RPC after the max".
            shift = (k - 1) * self.cal.t_inv_ms + self.cal.t_rpc_ms
            if trace is not None:
                trace.record(wrap.name, "rpc",
                             t0 + (k - 1) * self.cal.t_inv_ms, t0 + shift,
                             op="rpc")
            t = (self._wrap_part_latency(plan, wrap, sa, workflow,
                                         trace=trace, t0=t0 + shift)
                 + shift)
            rest = max(rest, t)
        return max(first, rest)

    # ------------------------------------------------------------------
    # Eq. (1): the whole workflow
    # ------------------------------------------------------------------
    def predict_workflow(self, workflow: Workflow, plan: DeploymentPlan, *,
                         trace=None) -> float:
        """Eq. (1) total; with ``trace`` set, also emits the predicted
        timeline (stage k's spans offset by the latency of stages < k).

        The trace carries *raw* predicted times — ``conservatism`` scales
        only the returned total, so traced timelines stay comparable with
        the runtime's mechanism for mechanism.

        Untraced totals compose per-stage cached results: only stages whose
        fingerprint has never been seen are simulated, and a total that
        reused at least one cached stage counts as a *delta* evaluation
        (``pgp.evals.delta``).  The summation order matches the uncached
        loop exactly, so cached totals are bit-identical.
        """
        if trace is None and self.cache is not None:
            total = 0.0
            any_cached = False
            for i in range(len(workflow.stages)):
                value, hit = self._predict_stage_cached(plan, workflow, i)
                any_cached = any_cached or hit
                total += value
            if any_cached:
                self.cache.metrics.inc("pgp.evals.delta")
            return total * self.conservatism
        total = 0.0
        for i in range(len(workflow.stages)):
            total += self.predict_stage(plan, workflow, i, trace=trace,
                                        t0=total)
        return total * self.conservatism

    # ------------------------------------------------------------------
    # Cold-start-aware first-invocation prediction
    # ------------------------------------------------------------------
    def boot_waves(self, plan: DeploymentPlan, workflow: Workflow) -> int:
        """How many boot latencies a first invocation serializes.

        Chiron wraps boot lazily: a wrap starts its sandbox when its first
        stage begins, and sibling wraps of one stage boot *concurrently* —
        so the request pays one boot cost per distinct first-stage wave,
        not one per sandbox.
        """
        seen: set[str] = set()
        waves = 0
        for i in range(len(workflow.stages)):
            fresh = [wrap for wrap, _sa in plan.stage_wraps(i)
                     if wrap.name not in seen]
            if fresh:
                waves += 1
                seen.update(wrap.name for wrap in fresh)
        return waves

    def boot_penalty_ms(self, plan: DeploymentPlan, workflow: Workflow,
                        tier=None, *,
                        creating_snapshot: bool = False) -> float:
        """Added first-invocation latency when sandboxes boot via ``tier``
        (a :class:`repro.lifecycle.BootTier`; default cold).  Zero for
        warm/pool tiers — the waves cost nothing."""
        from repro.lifecycle.policy import BootTier, boot_cost_ms

        tier = BootTier.COLD if tier is None else tier
        per_wave = boot_cost_ms(tier, self.cal,
                                creating_snapshot=creating_snapshot)
        if per_wave <= 0.0:
            return 0.0
        return self.boot_waves(plan, workflow) * per_wave

    def predict_first_invocation(self, workflow: Workflow,
                                 plan: DeploymentPlan, *, tier=None,
                                 creating_snapshot: bool = False) -> float:
        """Eq. (1) plus the boot-tier penalty: what the *first* request of
        a fresh deployment experiences, so PGP can plan against an SLO
        that includes cold start."""
        return (self.predict_workflow(workflow, plan)
                + self.boot_penalty_ms(plan, workflow, tier,
                                       creating_snapshot=creating_snapshot))
