"""Self-healing re-deployment control plane (closes ROADMAP item 5).

§3.4's adaptation story — "the Profiler and PGP are re-run periodically to
update wraps" — is dangerous when taken literally: a replan triggered by a
noisy window, computed from stale calibration, or applied during a fault
storm makes the deployment *worse*, and a blind loop has no way back.  This
module turns the passive window trigger of :mod:`repro.core.adaptive` into a
guarded closed loop:

1. **detect** — a typed :class:`DriftDetector` consumes the serving loop's
   latencies plus :class:`repro.obs.DivergenceReport` streams.  The
   ``model_error_ms`` / ``fault_induced_ms`` split matters: injected faults
   are *expected* divergence, so a fault storm classifies as ``fault-storm``
   (replans deferred — the retry/breaker machinery owns it) instead of
   masquerading as predictor drift.  Hysteresis, cooldown and flap
   suppression keep one noisy window from triggering anything.
2. **recalibrate** — only the drifted behaviours change: the refresh
   re-profiles the current workflow and fingerprint-diffs it against the
   live deployment; untouched stages fingerprint identically and are served
   from the manager's shared :class:`~repro.core.predictor.PredictionCache`.
3. **canary** — every candidate plan is shadow-evaluated in-sim: the recent
   request window is replayed (same seeds) against candidate and incumbent,
   and the candidate is promoted only if its p99 clears a guard margin
   (or rescues a blown SLO, or reclaims cores with headroom to spare).
4. **verify / roll back** — a promoted plan starts on *probation*: SLO
   violations and renewed divergence count as strikes, and past the budget
   the plane rolls back to the last-known-good deployment kept in a bounded
   :class:`PlanLedger`.  Repeated promote/rollback flips freeze the plane —
   the incumbent is pinned until the detector stops flapping.

Everything is deterministic (canary seeds derive from a replan counter) and
observable: ``controlplane.*`` events/counters are pinned in the
golden-trace schema.  See ``docs/controlplane.md`` for the state machine.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Optional

from repro.core.manager import ChironManager, Deployment
from repro.errors import SchedulingError
from repro.metrics.stats import percentile
from repro.obs.metrics import Registry
from repro.workflow.model import Workflow

#: typed events the control plane emits (pinned by the golden-trace schema)
CONTROLPLANE_EVENT_TYPES = (
    "controlplane.drift",
    "controlplane.deferred",
    "controlplane.recalibrated",
    "controlplane.canary",
    "controlplane.promoted",
    "controlplane.rejected",
    "controlplane.verified",
    "controlplane.rollback",
    "controlplane.frozen",
    "controlplane.unfrozen",
    "controlplane.refresh_failed",
    "controlplane.quarantine",
    "controlplane.drain",
    "controlplane.replaced",
)

#: counters the control plane increments (also schema-pinned);
#: ``adaptation.refresh_failed`` is shared with the simpler
#: :class:`repro.core.adaptive.AdaptiveDeployer` refresh loop
CONTROLPLANE_COUNTERS = (
    "controlplane.drift.detected",
    "controlplane.deferred",
    "controlplane.recalibrations",
    "controlplane.behaviours.drifted",
    "controlplane.canary.runs",
    "controlplane.promotions",
    "controlplane.rejections",
    "controlplane.verified",
    "controlplane.rollbacks",
    "controlplane.freezes",
    "controlplane.refresh_failed",
    "controlplane.infra.crashes",
    "controlplane.quarantines",
    "controlplane.drains",
    "controlplane.replacements",
    "adaptation.refresh_failed",
    "adaptation.refreshes",
)


# ---------------------------------------------------------------------------
# drift detection
# ---------------------------------------------------------------------------

class DriftState(enum.Enum):
    STEADY = "steady"
    DRIFTED = "drifted"


@dataclass(frozen=True)
class DriftSignal:
    """One observation fed to the detector.

    ``predicted_ms`` / ``model_error_ms`` / ``fault_induced_ms`` come from
    the most recent :class:`repro.obs.DivergenceReport` (zeros when the
    serving loop has none yet) — the detector never recomputes divergence,
    it consumes the stream.
    """

    latency_ms: float
    predicted_ms: float = 0.0
    model_error_ms: float = 0.0
    fault_induced_ms: float = 0.0


@dataclass(frozen=True)
class DriftDecision:
    """A tripped detector: why, and how bad the window looked."""

    reason: str             # "slo-pressure" | "model-error" |
    #                         "over-provisioned" | "fault-storm"
    index: int              # observation index at the trip
    p99_ms: float
    mean_ms: float
    model_error_rel: float  # windowed positive model error / predicted
    fault_share: float      # fault-induced share of the windowed excess


class DriftDetector:
    """Windowed drift detection with hysteresis, cooldown and flap history.

    A *breach* is a window whose p99 presses the SLO, whose positive model
    error exceeds ``error_fraction`` of the predicted time, or whose mean
    sits below the over-provisioning slack.  Only ``hysteresis`` consecutive
    breaches *for the same reason* trip the detector, and each trip opens a
    ``cooldown`` during which nothing trips again.  When the windowed excess
    is mostly fault-induced the trip reason is ``fault-storm`` — the caller
    is expected to defer, not replan.

    The control plane reports every plan change back via :meth:`note_flip`;
    :attr:`is_flapping` turns true once ``flap_limit`` flips land within
    ``flap_window`` observations.
    """

    def __init__(self, *, window: int = 24,
                 pressure_fraction: float = 0.95,
                 slack_fraction: float = 0.35,
                 error_fraction: float = 0.35,
                 fault_share_threshold: float = 0.5,
                 hysteresis: int = 3, cooldown: int = 24,
                 flap_limit: int = 3, flap_window: int = 240) -> None:
        if window < 2:
            raise SchedulingError(f"window must be >= 2, got {window}")
        if not 0 < slack_fraction < pressure_fraction <= 1.5:
            raise SchedulingError("need 0 < slack < pressure <= 1.5")
        if hysteresis < 1 or cooldown < 0:
            raise SchedulingError("hysteresis must be >= 1, cooldown >= 0")
        if error_fraction <= 0 or not 0 < fault_share_threshold <= 1:
            raise SchedulingError("error_fraction must be > 0, "
                                  "fault_share_threshold in (0, 1]")
        if flap_limit < 1 or flap_window < 1:
            raise SchedulingError("flap_limit and flap_window must be >= 1")
        self.window = window
        self.pressure_fraction = pressure_fraction
        self.slack_fraction = slack_fraction
        self.error_fraction = error_fraction
        self.fault_share_threshold = fault_share_threshold
        self.hysteresis = hysteresis
        self.cooldown = cooldown
        self.flap_limit = flap_limit
        self.flap_window = flap_window
        self.state = DriftState.STEADY
        self._signals: Deque[DriftSignal] = deque(maxlen=window)
        self._index = 0
        self._streak = 0
        self._streak_reason: Optional[str] = None
        self._cooldown_left = 0
        self._flips: Deque[int] = deque(maxlen=max(flap_limit * 4, 16))

    # -- the stream -----------------------------------------------------------
    def observe(self, signal: DriftSignal,
                slo_ms: float) -> Optional[DriftDecision]:
        """Feed one observation; return a decision only on a trip."""
        self._index += 1
        self._signals.append(signal)
        if len(self._signals) < self.window:
            return None
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            return None
        window = list(self._signals)
        latencies = [s.latency_ms for s in window]
        p99 = percentile(latencies, 99)
        mean = sum(latencies) / len(latencies)
        model_err = sum(max(s.model_error_ms, 0.0) for s in window)
        fault_ms = sum(max(s.fault_induced_ms, 0.0) for s in window)
        predicted = sum(s.predicted_ms for s in window)
        err_rel = model_err / predicted if predicted > 0 else 0.0
        excess = model_err + fault_ms
        fault_share = fault_ms / excess if excess > 0 else 0.0

        reason: Optional[str] = None
        pressure = p99 > self.pressure_fraction * slo_ms
        diverging = err_rel > self.error_fraction
        if pressure or diverging:
            if fault_ms > 0 and fault_share >= self.fault_share_threshold:
                reason = "fault-storm"
            elif pressure:
                reason = "slo-pressure"
            else:
                reason = "model-error"
        elif mean < self.slack_fraction * slo_ms:
            reason = "over-provisioned"
        if reason is None:
            self._streak = 0
            self._streak_reason = None
            self.state = DriftState.STEADY
            return None

        if reason == self._streak_reason:
            self._streak += 1
        else:
            self._streak = 1
            self._streak_reason = reason
        if self._streak < self.hysteresis:
            return None
        # trip: open the cooldown so one drifted phase yields one decision
        self.state = DriftState.DRIFTED
        self._streak = 0
        self._streak_reason = None
        self._cooldown_left = self.cooldown
        return DriftDecision(reason=reason, index=self._index, p99_ms=p99,
                             mean_ms=mean, model_error_rel=err_rel,
                             fault_share=fault_share)

    # -- feedback from the control plane --------------------------------------
    def note_flip(self) -> None:
        """Record one applied plan change (promotion or rollback)."""
        self._flips.append(self._index)

    @property
    def is_flapping(self) -> bool:
        recent = [f for f in self._flips
                  if f > self._index - self.flap_window]
        return len(recent) >= self.flap_limit

    def suppress(self, observations: int) -> None:
        """Extend the cooldown (e.g. after a deferred or failed replan)."""
        self._cooldown_left = max(self._cooldown_left, observations)

    def reset_window(self) -> None:
        """Drop buffered signals — they measured a plan that is now gone."""
        self._signals.clear()
        self._streak = 0
        self._streak_reason = None
        self.state = DriftState.STEADY

    def clear_flips(self) -> None:
        self._flips.clear()


# ---------------------------------------------------------------------------
# plan history
# ---------------------------------------------------------------------------

@dataclass
class PlanRecord:
    """One ledger entry: a deployment and how its promotion ended."""

    deployment: Deployment
    observation: int
    status: str              # "good" | "probation" | "rolled-back"
    note: str = ""


class PlanLedger:
    """Bounded history of applied deployments; rollback target supplier."""

    def __init__(self, maxlen: int = 8) -> None:
        if maxlen < 2:
            raise SchedulingError(f"ledger depth must be >= 2, got {maxlen}")
        self._records: Deque[PlanRecord] = deque(maxlen=maxlen)

    def push(self, record: PlanRecord) -> None:
        self._records.append(record)

    @property
    def records(self) -> list[PlanRecord]:
        return list(self._records)

    @property
    def current(self) -> Optional[PlanRecord]:
        return self._records[-1] if self._records else None

    @property
    def last_good(self) -> Optional[PlanRecord]:
        for record in reversed(self._records):
            if record.status == "good":
                return record
        return None

    def __len__(self) -> int:
        return len(self._records)


# ---------------------------------------------------------------------------
# machine health: quarantine crash-loopers, drain suspect domains
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MachineHealthConfig:
    """When a machine stops being trusted with placements.

    ``fault_charge_ms`` is the per-machine latency mass one infrastructure
    crash is charged into the drift detector's ``fault_induced_ms`` stream —
    crash-looping domains therefore classify as ``fault-storm`` (replans
    deferred) exactly like intra-sandbox fault storms do.
    """

    crash_threshold: int = 2
    crash_window_ms: float = 120_000.0
    domain_drain_threshold: int = 2
    fault_charge_ms: float = 250.0

    def __post_init__(self) -> None:
        if self.crash_threshold < 1 or self.domain_drain_threshold < 1:
            raise SchedulingError("health thresholds must be >= 1")
        if self.crash_window_ms <= 0 or self.fault_charge_ms < 0:
            raise SchedulingError("crash window must be > 0, charge >= 0")


class MachineHealthMonitor:
    """Tracks per-machine crash history over a failure-domain topology.

    A machine that crashes ``crash_threshold`` times within
    ``crash_window_ms`` is *quarantined* (no new placements until an
    operator :meth:`release`\\ s it); once ``domain_drain_threshold``
    machines of one rack are quarantined, the whole rack is *drained* —
    correlated crash-looping means the domain itself is suspect.
    """

    def __init__(self, topology, config: Optional[MachineHealthConfig] = None
                 ) -> None:
        self.topology = topology
        self.config = config or MachineHealthConfig()
        self._crashes: dict[str, list[float]] = {}
        self.quarantined: set[str] = set()
        self.drained_racks: set[str] = set()

    def observe(self, event) -> list[tuple[str, str]]:
        """Feed one :class:`~repro.faults.domains.ChaosEvent`.

        Returns the actions newly taken, as ``("quarantine", machine)`` /
        ``("drain", rack)`` pairs, for the control plane to emit.
        """
        if event.mechanism not in ("machine.crash", "domain.outage"):
            return []
        actions: list[tuple[str, str]] = []
        for name in self.topology.members(event.target):
            actions.extend(self._record_crash(name, event.at_ms))
        return actions

    def _record_crash(self, name: str, at_ms: float
                      ) -> list[tuple[str, str]]:
        cfg = self.config
        log = self._crashes.setdefault(name, [])
        log.append(at_ms)
        log[:] = [t for t in log if t > at_ms - cfg.crash_window_ms]
        actions: list[tuple[str, str]] = []
        if len(log) >= cfg.crash_threshold and name not in self.quarantined:
            self.quarantined.add(name)
            actions.append(("quarantine", name))
            rack = self.topology.machine(name).rack
            in_rack = {m.name for m in self.topology.machines
                       if m.rack == rack}
            if (rack not in self.drained_racks
                    and len(self.quarantined & in_rack)
                    >= cfg.domain_drain_threshold):
                self.drained_racks.add(rack)
                actions.append(("drain", rack))
        return actions

    def release(self, name: str) -> None:
        """Operator action: trust the machine (and possibly its rack) again."""
        self.quarantined.discard(name)
        self._crashes.pop(name, None)
        rack = self.topology.machine(name).rack
        in_rack = {m.name for m in self.topology.machines if m.rack == rack}
        if (len(self.quarantined & in_rack)
                < self.config.domain_drain_threshold):
            self.drained_racks.discard(rack)

    def schedulable(self, name: str) -> bool:
        """Live, not quarantined, and not inside a drained rack."""
        machine = self.topology.machine(name)
        return (machine.alive and name not in self.quarantined
                and machine.rack not in self.drained_racks)

    def candidates(self) -> list:
        """Machines placements may currently target."""
        return [m for m in self.topology.machines
                if self.schedulable(m.name)]

    def displaced_by_owner(self) -> dict[str, int]:
        """Reservations lost to machine failures, attributed per owner.

        Counts every :class:`~repro.runtime.machine.Allocation` that died
        with a crashed machine, keyed by its ``owner`` label (tenant or
        workflow); untagged reservations land under ``"unattributed"`` so
        the totals still add up.
        """
        counts: dict[str, int] = {}
        for machine in self.topology.machines:
            for allocation in machine.displaced:
                owner = allocation.owner or "unattributed"
                counts[owner] = counts.get(owner, 0) + 1
        return counts

    def summary(self) -> dict:
        return {
            "quarantined": sorted(self.quarantined),
            "drained_racks": sorted(self.drained_racks),
            "schedulable": len(self.candidates()),
            "machines": len(self.topology.machines),
            "displaced_by_owner": self.displaced_by_owner(),
        }


# ---------------------------------------------------------------------------
# canary / shadow evaluation
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CanaryResult:
    """Outcome of replaying the recent window against both plans in-sim."""

    candidate_p99_ms: float
    incumbent_p99_ms: float
    slo_ms: float
    improvement: float       # (incumbent - candidate) / incumbent
    candidate_cores: int
    incumbent_cores: int
    replays: int
    verdict: str             # "promote" | "reject"
    rule: str                # guard rule that decided


# ---------------------------------------------------------------------------
# the control plane
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ControlPlaneConfig:
    """Every knob of the closed loop, validated up front."""

    window: int = 24
    pressure_fraction: float = 0.95
    slack_fraction: float = 0.35
    error_fraction: float = 0.35
    fault_share_threshold: float = 0.5
    hysteresis: int = 3
    cooldown: int = 24
    flap_limit: int = 3
    flap_window: int = 240
    freeze_for: int = 120
    #: candidate must beat the incumbent's shadow p99 by this fraction
    guard_margin: float = 0.10
    #: a core-reclaiming candidate must keep p99 under this fraction of SLO
    promote_headroom: float = 0.85
    canary_replays: int = 8
    #: post-promotion verification length (observations)
    probation: int = 24
    #: strikes (SLO violations or renewed divergence) tolerated on probation
    rollback_budget: int = 6
    ledger_depth: int = 8
    #: forwarded to :meth:`ChironManager.deploy` — ``"sa"``/``"portfolio"``/
    #: :class:`repro.core.search.SearchOptions` to spend the PR 6 search
    #: budget on every candidate plan
    search: object = None
    generate_code: bool = False

    def __post_init__(self) -> None:
        if not 0 < self.guard_margin < 1:
            raise SchedulingError("guard_margin must be in (0, 1)")
        if not 0 < self.promote_headroom <= 1:
            raise SchedulingError("promote_headroom must be in (0, 1]")
        if self.canary_replays < 1:
            raise SchedulingError("canary_replays must be >= 1")
        if self.probation < 1 or self.rollback_budget < 0:
            raise SchedulingError("probation must be >= 1, "
                                  "rollback_budget >= 0")
        if self.freeze_for < 1:
            raise SchedulingError("freeze_for must be >= 1")

    def detector(self) -> DriftDetector:
        return DriftDetector(
            window=self.window, pressure_fraction=self.pressure_fraction,
            slack_fraction=self.slack_fraction,
            error_fraction=self.error_fraction,
            fault_share_threshold=self.fault_share_threshold,
            hysteresis=self.hysteresis, cooldown=self.cooldown,
            flap_limit=self.flap_limit, flap_window=self.flap_window)


@dataclass(frozen=True)
class ControlAction:
    """One audited decision of the plane (the ``actions`` log)."""

    observation: int
    kind: str    # "promoted" | "rejected" | "rolled-back" | "deferred" |
    #              "frozen" | "refresh-failed"
    reason: str
    detail: dict = field(default_factory=dict)


class RedeploymentControlPlane:
    """Divergence-driven recalibration with canary replans and rollback.

    The serving loop owns execution; the plane owns the deployment.  Per
    request the loop calls :meth:`observe` with the measured latency, the
    freshest :class:`~repro.obs.DivergenceReport` (optional) and a snapshot
    of the *currently observed* workflow behaviours (optional — defaults to
    the deployed ones, i.e. no recalibration data).  ``hold`` is a zero-arg
    callable returning a deferral reason while replans must wait — see
    :func:`breaker_brownout_hold` for the standard breaker/brownout gate.
    """

    def __init__(self, manager: Optional[ChironManager] = None, *,
                 config: Optional[ControlPlaneConfig] = None,
                 tracer=None,
                 hold: Optional[Callable[[], Optional[str]]] = None) -> None:
        self.manager = manager or ChironManager()
        self.config = config or ControlPlaneConfig()
        self.tracer = tracer
        self.metrics: Registry = (tracer.metrics if tracer is not None
                                  else Registry())
        self.hold = hold
        self.detector = self.config.detector()
        self.ledger = PlanLedger(self.config.ledger_depth)
        self.deployment: Optional[Deployment] = None
        self.state = "steady"    # "steady" | "probation" | "frozen"
        self.actions: list[ControlAction] = []
        self._observations = 0
        self._replans = 0
        self._frozen_until = 0
        self._probation_left = 0
        self._probation_strikes = 0
        self._promoted_at: Optional[int] = None
        #: machine-health monitor, attached via :meth:`attach_fleet`
        self.health: Optional[MachineHealthMonitor] = None
        #: infrastructure fault charges not yet folded into DriftSignals —
        #: one entry per crashed machine, drained one per observation so a
        #: burst of crashes stays visible across the detector window
        self._infra_charges: Deque[float] = deque()

    # -- lifecycle ------------------------------------------------------------
    def deploy(self, workflow: Workflow, slo_ms: float) -> Deployment:
        """Initial deployment; seeds the ledger's last-known-good."""
        self.deployment = self.manager.deploy(
            workflow, slo_ms, generate_code=self.config.generate_code,
            search=self.config.search)
        self.ledger.push(PlanRecord(self.deployment, self._observations,
                                    "good", "initial deploy"))
        self.detector.reset_window()
        self.state = "steady"
        return self.deployment

    @property
    def slo_ms(self) -> float:
        if self.deployment is None or self.deployment.plan.slo_ms is None:
            raise SchedulingError("no active deployment with an SLO")
        return self.deployment.plan.slo_ms

    @property
    def last_known_good(self) -> Optional[Deployment]:
        record = self.ledger.last_good
        return record.deployment if record is not None else None

    # -- observability helpers -------------------------------------------------
    def _emit(self, name: str, counter: Optional[str] = None,
              **tags: object) -> None:
        if counter is not None:
            self.metrics.inc(counter)
        if self.tracer is not None:
            self.tracer.event(name, entity="controlplane", **tags)

    def _act(self, kind: str, reason: str, **detail: object) -> ControlAction:
        action = ControlAction(observation=self._observations, kind=kind,
                               reason=reason, detail=detail)
        self.actions.append(action)
        return action

    # -- the loop --------------------------------------------------------------
    def observe(self, latency_ms: float, *,
                report=None,
                current_workflow: Optional[Workflow] = None
                ) -> Optional[ControlAction]:
        """Feed one measured request latency (plus divergence context).

        Returns the :class:`ControlAction` taken this observation, if any.
        """
        if self.deployment is None:
            raise SchedulingError("observe() before deploy()")
        self._observations += 1
        slo = self.slo_ms
        signal = self._signal(latency_ms, report)

        if self.state == "probation":
            action = self._verify(latency_ms, signal, slo)
            if action is not None:
                return action
        if self.state == "frozen":
            if self._observations < self._frozen_until:
                return None
            self.state = "steady"
            self.detector.clear_flips()
            self.detector.reset_window()
            self._emit("controlplane.unfrozen")
            # fall through: this observation feeds the fresh window

        decision = self.detector.observe(signal, slo)
        if decision is None:
            return None
        self._emit("controlplane.drift", "controlplane.drift.detected",
                   reason=decision.reason,
                   p99_ms=round(decision.p99_ms, 3),
                   model_error_rel=round(decision.model_error_rel, 4),
                   fault_share=round(decision.fault_share, 4))

        if decision.reason == "fault-storm":
            return self._defer(decision.reason)
        held = self.hold() if self.hold is not None else None
        if held is not None:
            return self._defer(held)
        if self.detector.is_flapping:
            return self._freeze(decision.reason)
        return self._replan(decision, current_workflow)

    # -- machine-scale integration ---------------------------------------------
    def attach_fleet(self, fleet, *,
                     health: Optional[MachineHealthConfig] = None
                     ) -> MachineHealthMonitor:
        """Subscribe to a :class:`~repro.faults.domains.FleetState`.

        Machine crashes and domain outages then (a) charge fault mass into
        the drift detector's ``fault_induced_ms`` stream, so crash-looping
        domains classify as ``fault-storm`` and defer replans, and (b) feed
        the :class:`MachineHealthMonitor`, which quarantines crash-loopers
        and drains suspect racks out of the placement candidate set.
        """
        self.health = MachineHealthMonitor(fleet.topology, health)
        fleet.subscribe(self._observe_infra)
        return self.health

    def _observe_infra(self, event) -> None:
        if self.health is None:
            return
        if event.mechanism in ("machine.crash", "domain.outage"):
            affected = len(self.health.topology.members(event.target))
            charge = self.health.config.fault_charge_ms
            self._infra_charges.extend([charge] * affected)
            self.metrics.inc("controlplane.infra.crashes", affected)
        for kind, target in self.health.observe(event):
            if kind == "quarantine":
                self._emit("controlplane.quarantine",
                           "controlplane.quarantines", machine=target,
                           at_ms=event.at_ms)
                self._act("quarantine", "crash-loop", machine=target)
            else:
                self._emit("controlplane.drain", "controlplane.drains",
                           rack=target, at_ms=event.at_ms)
                self._act("drain", "correlated-crash-loop", rack=target)

    def replace_displaced(self, *, reason: str = "machine-failure",
                          current_workflow: Optional[Workflow] = None
                          ) -> ControlAction:
        """Emergency re-placement after machine death.

        Wraps displaced by a crashed/quarantined machine are re-planned
        through :meth:`ChironManager.refresh` and re-deployed immediately —
        no canary: the incumbent's sandboxes are gone, so there is nothing
        to shadow against and nothing to keep serving meanwhile.
        """
        if self.deployment is None:
            raise SchedulingError("replace_displaced() before deploy()")
        workflow = current_workflow or self.deployment.workflow
        try:
            candidate = self.manager.refresh(
                self.deployment, self.slo_ms, workflow=workflow,
                search=self.config.search,
                generate_code=self.config.generate_code)
        except SchedulingError as exc:
            self._emit("controlplane.refresh_failed",
                       "controlplane.refresh_failed", error=str(exc))
            return self._act("refresh-failed", reason, error=str(exc))
        self.deployment = candidate
        self.ledger.push(PlanRecord(candidate, self._observations, "good",
                                    f"re-placement: {reason}"))
        self.detector.reset_window()
        self.metrics.inc("adaptation.refreshes")
        displaced = (self.health.displaced_by_owner()
                     if self.health is not None else {})
        self._emit("controlplane.replaced", "controlplane.replacements",
                   reason=reason, cores=candidate.plan.total_cores,
                   displaced_by_owner=displaced)
        return self._act("replaced", reason, displaced_by_owner=displaced)

    # -- internals -------------------------------------------------------------
    def _signal(self, latency_ms: float, report) -> DriftSignal:
        # infrastructure crashes observed since the last request fold into
        # the signal stream's fault mass — a machine-kill storm then trips
        # the detector as "fault-storm", deferring replans exactly like an
        # intra-sandbox fault storm would
        infra_ms = (self._infra_charges.popleft()
                    if self._infra_charges else 0.0)
        if report is None:
            return DriftSignal(latency_ms=latency_ms,
                               fault_induced_ms=infra_ms)
        return DriftSignal(
            latency_ms=latency_ms,
            predicted_ms=max(report.predicted_total_ms, 0.0),
            model_error_ms=report.model_error_ms,
            fault_induced_ms=report.fault_induced_ms + infra_ms)

    def _defer(self, reason: str) -> ControlAction:
        self.detector.suppress(self.config.cooldown)
        self._emit("controlplane.deferred", "controlplane.deferred",
                   reason=reason)
        return self._act("deferred", reason)

    def _freeze(self, reason: str) -> ControlAction:
        self.state = "frozen"
        self._frozen_until = self._observations + self.config.freeze_for
        self._emit("controlplane.frozen", "controlplane.freezes",
                   reason=reason, until=self._frozen_until)
        return self._act("frozen", reason, until=self._frozen_until)

    def _verify(self, latency_ms: float, signal: DriftSignal,
                slo: float) -> Optional[ControlAction]:
        """Post-promotion continuous verification: strikes against a budget."""
        strike = latency_ms > slo
        if not strike and signal.predicted_ms > 0:
            rel = max(signal.model_error_ms, 0.0) / signal.predicted_ms
            strike = rel > self.config.error_fraction
        if strike:
            self._probation_strikes += 1
        if self._probation_strikes > self.config.rollback_budget:
            return self._rollback()
        self._probation_left -= 1
        if self._probation_left <= 0:
            record = self.ledger.current
            if record is not None and record.status == "probation":
                record.status = "good"
            self.state = "steady"
            self._emit("controlplane.verified", "controlplane.verified",
                       strikes=self._probation_strikes)
        return None

    def _rollback(self) -> ControlAction:
        record = self.ledger.current
        if record is not None and record.status == "probation":
            record.status = "rolled-back"
        good = self.ledger.last_good
        if good is None:
            raise SchedulingError("rollback with no known-good deployment")
        self.deployment = good.deployment
        self.state = "steady"
        self.detector.note_flip()
        self.detector.reset_window()
        self.detector.suppress(self.config.cooldown)
        elapsed = (self._observations - self._promoted_at
                   if self._promoted_at is not None else 0)
        self._emit("controlplane.rollback", "controlplane.rollbacks",
                   strikes=self._probation_strikes,
                   probation_elapsed=elapsed)
        return self._act("rolled-back", "probation-budget",
                         strikes=self._probation_strikes,
                         probation_elapsed=elapsed)

    def _recalibrate(self, decision: DriftDecision,
                     workflow: Workflow) -> Optional[Deployment]:
        """Refresh through the manager; ``None`` keeps the incumbent."""
        cache = self.manager.prediction_cache
        hits_before = cache.hits if cache is not None else 0
        try:
            candidate = self.manager.refresh(
                self.deployment, self.slo_ms, workflow=workflow,
                search=self.config.search,
                generate_code=self.config.generate_code)
        except SchedulingError as exc:
            self._emit("controlplane.refresh_failed",
                       "controlplane.refresh_failed", error=str(exc))
            self.detector.suppress(self.config.cooldown)
            self._act("refresh-failed", decision.reason, error=str(exc))
            return None
        old = {f.name: f.behavior.fingerprint()
               for f in self.deployment.profiled_workflow.functions}
        drifted = [f.name for f in candidate.profiled_workflow.functions
                   if old.get(f.name) != f.behavior.fingerprint()]
        hits_after = cache.hits if cache is not None else 0
        self.metrics.inc("controlplane.behaviours.drifted", len(drifted))
        self._emit("controlplane.recalibrated",
                   "controlplane.recalibrations",
                   drifted=len(drifted),
                   cache_hits=hits_after - hits_before)
        return candidate

    def _replan(self, decision: DriftDecision,
                current_workflow: Optional[Workflow]) -> ControlAction:
        workflow = current_workflow or self.deployment.workflow
        incumbent = self.deployment
        candidate = self._recalibrate(decision, workflow)
        if candidate is None:
            return self.actions[-1]
        profiled = candidate.profiled_workflow
        if (candidate.plan.fingerprint(profiled)
                == incumbent.plan.fingerprint(profiled)):
            self._emit("controlplane.rejected", "controlplane.rejections",
                       rule="no-change", reason=decision.reason)
            return self._act("rejected", decision.reason, rule="no-change")
        canary = self._canary(candidate, incumbent, decision)
        self._emit("controlplane.canary", "controlplane.canary.runs",
                   candidate_p99_ms=round(canary.candidate_p99_ms, 3),
                   incumbent_p99_ms=round(canary.incumbent_p99_ms, 3),
                   verdict=canary.verdict, rule=canary.rule)
        if canary.verdict != "promote":
            self._emit("controlplane.rejected", "controlplane.rejections",
                       rule=canary.rule, reason=decision.reason)
            return self._act("rejected", decision.reason, rule=canary.rule,
                             canary=canary)
        self.deployment = candidate
        self.ledger.push(PlanRecord(candidate, self._observations,
                                    "probation", decision.reason))
        self.state = "probation"
        self._probation_left = self.config.probation
        self._probation_strikes = 0
        self._promoted_at = self._observations
        self.detector.note_flip()
        self.detector.reset_window()
        self.metrics.inc("adaptation.refreshes")
        self._emit("controlplane.promoted", "controlplane.promotions",
                   reason=decision.reason, rule=canary.rule,
                   cores=candidate.plan.total_cores,
                   old_cores=incumbent.plan.total_cores)
        return self._act("promoted", decision.reason, rule=canary.rule,
                         canary=canary)

    def _canary(self, candidate: Deployment, incumbent: Deployment,
                decision: DriftDecision) -> CanaryResult:
        """Shadow-replay the recent window against both plans in-sim.

        Both replays use the candidate's freshly profiled behaviours (the
        best available estimate of current reality) and identical seeds, so
        the comparison isolates the *plan* difference.  Seeds derive from
        the replan counter — runs are deterministic, never wall-clock.
        """
        from repro.platforms.chiron import ChironPlatform

        self._replans += 1
        cfg = self.config
        slo = self.slo_ms
        workflow = candidate.profiled_workflow
        seeds = [1_000_000 + self._replans * 10_000 + i
                 for i in range(cfg.canary_replays)]
        cand_platform = ChironPlatform(candidate.plan, self.manager.cal,
                                       name="chiron-canary")
        inc_platform = ChironPlatform(incumbent.plan, self.manager.cal,
                                      name="chiron-shadow")
        cand = [cand_platform.run(workflow, seed=s).latency_ms
                for s in seeds]
        inc = [inc_platform.run(workflow, seed=s).latency_ms for s in seeds]
        cand_p99 = percentile(cand, 99)
        inc_p99 = percentile(inc, 99)
        improvement = ((inc_p99 - cand_p99) / inc_p99
                       if inc_p99 > 0 else 0.0)
        cand_cores = candidate.plan.total_cores
        inc_cores = incumbent.plan.total_cores
        if inc_p99 > slo >= cand_p99:
            verdict, rule = "promote", "slo-rescue"
        elif improvement >= cfg.guard_margin and cand_p99 <= slo:
            verdict, rule = "promote", "guard-margin"
        elif (cand_cores < inc_cores
              and cand_p99 <= cfg.promote_headroom * slo):
            verdict, rule = "promote", "scale-down"
        else:
            verdict, rule = "reject", "guard-margin"
        return CanaryResult(
            candidate_p99_ms=cand_p99, incumbent_p99_ms=inc_p99,
            slo_ms=slo, improvement=improvement,
            candidate_cores=cand_cores, incumbent_cores=inc_cores,
            replays=cfg.canary_replays, verdict=verdict, rule=rule)


def breaker_brownout_hold(board=None,
                          brownout_active: Optional[Callable[[], bool]]
                          = None) -> Callable[[], Optional[str]]:
    """Standard deferral gate: hold replans while the overload plane is hot.

    ``board`` is a :class:`repro.overload.BreakerBoard` (any open breaker
    defers — a replan mid-outage would canary against garbage) and
    ``brownout_active`` a zero-arg truth function (a replan would fight the
    autoscaler's deliberate degradation).
    """
    def hold() -> Optional[str]:
        if board is not None:
            from repro.overload.breaker import BreakerState

            for scope, breaker in getattr(board, "_breakers", {}).items():
                if breaker.state is BreakerState.OPEN:
                    return f"breaker-open:{scope}"
        if brownout_active is not None and brownout_active():
            return "brownout"
        return None

    return hold
