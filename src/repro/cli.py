"""Command-line interface: run experiments, inspect plans, demo execution.

Examples::

    chiron-repro list
    chiron-repro run fig13 --quick
    chiron-repro run-all --quick
    chiron-repro plan --workload finra-50 --slo 150
    chiron-repro trace finra-5 --out trace.json --timeline
    chiron-repro demo --workload social-network
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro._version import __version__


def _cmd_list(_args: argparse.Namespace) -> int:
    from repro.experiments import EXPERIMENTS

    print("available experiments:")
    for name in sorted(EXPERIMENTS):
        fn = EXPERIMENTS[name]
        doc = fn.__doc__ or sys.modules[fn.__module__].__doc__ or ""
        first = doc.strip().splitlines()[0] if doc.strip() else ""
        print(f"  {name:22s} {first}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments import run_experiment

    t0 = time.perf_counter()
    result = run_experiment(args.experiment, quick=args.quick)
    print(result.to_table())
    if args.chart:
        from repro.experiments.render import bar_chart

        numeric = [c for c in result.columns
                   if result.rows and isinstance(result.rows[0][c],
                                                 (int, float))]
        labels = [c for c in result.columns if c not in numeric]
        if numeric and labels:
            values = [float(r[numeric[-1]]) for r in result.rows]
            spread = max(values) / max(min(v for v in values if v > 0), 1e-9) \
                if any(v > 0 for v in values) else 1.0
            print()
            print(bar_chart(result, label_cols=labels,
                            value_col=numeric[-1], log=spread > 100))
    print(f"\n[{args.experiment} finished in "
          f"{time.perf_counter() - t0:.1f} s]")
    return 0


def _format_failures(failures) -> str:
    """Summarize run-all failures, injected faults apart from real bugs.

    A :class:`repro.errors.FaultError` (``RetryExhausted`` included) means
    the experiment's *simulated* fault budget ran out — interesting, but not
    a defect in the experiment code; anything else is a genuine bug.
    """
    from repro.errors import FaultError

    fault_hits = [(n, e) for n, e in failures if isinstance(e, FaultError)]
    bugs = [(n, e) for n, e in failures if not isinstance(e, FaultError)]
    lines = [f"{len(failures)} experiment(s) failed:"]
    if fault_hits:
        lines.append("  injected faults exhausted retries (not a bug): "
                     + ", ".join(f"{n} [{e.mechanism}]"
                                 for n, e in fault_hits))
    if bugs:
        lines.append("  experiment errors: "
                     + ", ".join(f"{n} ({type(e).__name__}: {e})"
                                 for n, e in bugs))
    return "\n".join(lines)


def _cmd_run_all(args: argparse.Namespace) -> int:
    from repro.experiments import EXPERIMENTS, run_experiment

    failures = []
    for name in sorted(EXPERIMENTS):
        t0 = time.perf_counter()
        try:
            result = run_experiment(name, quick=args.quick)
        except Exception as exc:  # surface but keep going
            failures.append((name, exc))
            print(f"=== {name}: FAILED ({exc}) ===\n")
            continue
        print(f"=== {name} ({time.perf_counter() - t0:.1f} s) ===")
        print(result.to_table())
        print()
    if failures:
        print(_format_failures(failures))
        return 1
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.apps import workload
    from repro.core import ChironManager

    wf = workload(args.workload)
    manager = ChironManager()
    deployment = manager.deploy(wf, slo_ms=args.slo)
    plan = deployment.plan
    if args.save:
        from repro.core.serialize import plan_to_json

        with open(args.save, "w") as fh:
            fh.write(plan_to_json(plan))
        print(f"plan written to {args.save}")
    print(f"workflow {wf.name}: {wf.num_functions} functions, "
          f"{len(wf.stages)} stages, max parallelism {wf.max_parallelism}")
    print(f"SLO {args.slo:.1f} ms -> predicted "
          f"{plan.predicted_latency_ms:.1f} ms, {plan.n_wraps} wrap(s), "
          f"{plan.total_cores} CPU(s)")
    for wrap in plan.wraps:
        print(f"\n{wrap.name} (cores={plan.cores_for(wrap)}):")
        for sa in wrap.stages:
            groups = ", ".join(
                f"{p.mode.value}[{','.join(p.functions)}]"
                for p in sa.processes)
            print(f"  stage {sa.stage_index}: {groups}")
    if args.show_code:
        for name, source in deployment.orchestrator_sources.items():
            print(f"\n----- generated orchestrator: {name} -----")
            print(source)
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.apps import workload
    from repro.core.serialize import plan_from_json
    from repro.metrics import summarize_latencies
    from repro.platforms import ChironPlatform

    wf = workload(args.workload)
    with open(args.plan_file) as fh:
        plan = plan_from_json(fh.read())
    plan.validate(wf)
    platform = ChironPlatform(plan)
    latencies = [platform.run(wf, seed=1000 + r).latency_ms
                 for r in range(args.requests)]
    stats = summarize_latencies(latencies)
    print(f"replayed {args.requests} request(s) of {wf.name!r} on "
          f"{plan.n_wraps} wrap(s):")
    print(f"  mean {stats.mean_ms:.1f} ms | p50 {stats.p50_ms:.1f} | "
          f"p99 {stats.p99_ms:.1f}")
    if plan.slo_ms:
        viol = sum(1 for l in latencies if l > plan.slo_ms)
        print(f"  SLO {plan.slo_ms:.1f} ms: {viol}/{args.requests} violations")
    return 0


def _normalize_workload(name: str) -> str:
    """Accept sloppy workload spellings: ``finra5`` -> ``finra-5``."""
    import re

    from repro.apps.catalog import ALL_WORKLOADS

    if name in ALL_WORKLOADS:
        return name
    candidate = re.sub(r"(?<=[a-zA-Z])(?=\d)", "-", name.replace("_", "-"))
    if candidate in ALL_WORKLOADS:
        return candidate
    return name  # let workload() raise with the known-names message


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.apps import workload
    from repro.core import ChironManager
    from repro.obs import Tracer, compare, write_chrome_trace
    from repro.obs.export import render_timeline

    wf = workload(_normalize_workload(args.workload))
    # 1.4x the solo critical path: tight enough that PGP spreads the stage
    # over several wraps (gateway RPCs), loose enough that some functions
    # co-locate as threads (GIL handoffs) — every mechanism shows up.
    slo = args.slo if args.slo is not None else wf.critical_path_ms * 1.4
    manager = ChironManager()
    manager_tracer = Tracer()  # wall-clock: the deploy pipeline phases
    deployment = manager.deploy(wf, slo_ms=slo, generate_code=False,
                                tracer=manager_tracer)
    plan = deployment.plan
    print(f"workflow {wf.name}: {wf.num_functions} functions, "
          f"SLO {slo:.1f} ms -> {plan.n_wraps} wrap(s), "
          f"{plan.total_cores} CPU(s), predicted "
          f"{plan.predicted_latency_ms:.1f} ms")
    phases = ", ".join(f"{s.tags['op'].split('.')[-1]} {s.duration_ms:.1f} ms"
                       for s in manager_tracer.spans(entity="manager"))
    print(f"manager pipeline: {phases}")

    tracer = Tracer()  # simulation-clock: the request's detailed timeline
    report = compare(deployment.profiled_workflow, plan, cal=manager.cal,
                     predictor=manager.predictor, cold=not args.warm,
                     tracer=tracer)
    print()
    print(report.to_text())
    if args.timeline:
        print()
        print(render_timeline(tracer, width=args.timeline))
    if args.metrics:
        print()
        print(tracer.metrics.to_text())
    if args.out:
        write_chrome_trace(tracer, args.out)
        print(f"\nChrome trace-event JSON written to {args.out} "
              f"(load in Perfetto or chrome://tracing)")
    return 0


def _apply_retry_overrides(policy, retries: Optional[int],
                           timeout_ms: Optional[float]):
    """Override preset knobs from ``--retries``/``--timeout-ms``.

    ``RetryPolicy.__post_init__`` re-validates the result, so a bad value
    (``--retries 0``) surfaces as the usual exit-code-2 one-liner.
    """
    import dataclasses

    if retries is not None:
        policy = dataclasses.replace(policy, max_attempts=retries)
    if timeout_ms is not None:
        policy = dataclasses.replace(policy, attempt_timeout_ms=timeout_ms)
    return policy


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.experiments.fault_blast_radius import (DEFAULT_PLATFORMS,
                                                      measure)
    from repro.faults import FaultPlan, preset

    app = _normalize_workload(args.app)
    policy = _apply_retry_overrides(preset(args.policy), args.retries,
                                    args.timeout_ms)
    plan = FaultPlan(seed=args.seed, sandbox_crash_rate=args.rate)
    platforms = args.platforms or list(DEFAULT_PLATFORMS)
    print(f"fault injection: {app}, crash rate {args.rate:g}, "
          f"seed {args.seed}, policy {args.policy!r} "
          f"({policy.max_attempts} attempt(s))")
    header = (f"  {'platform':<12s} {'p50_ms':>9s} {'p99_ms':>9s} "
              f"{'faults':>7s} {'retries':>8s} {'wasted':>8s} {'failed':>7s}")
    print(header)
    for name in platforms:
        row = measure(app, name, plan, policy=policy,
                      requests=args.requests, crash_only=True)
        print(f"  {row['platform']:<12s} {row['p50_ms']:9.2f} "
              f"{row['p99_ms']:9.2f} {row['faults']:7d} "
              f"{row['retries']:8d} {row['wasted_ratio']:8.4f} "
              f"{row['failed']:7d}")
    print(f"\n[{args.requests} request(s) per platform; wasted = "
          f"re-executed work / useful work; deterministic under --seed]")
    return 0


def _cmd_overload(args: argparse.Namespace) -> int:
    from repro.errors import CapacityError
    from repro.experiments.overload_goodput import POLICIES, sweep
    from repro.faults import preset

    app = _normalize_workload(args.app)
    if args.policy == "both":
        policies = POLICIES
    elif args.policy in POLICIES:
        policies = (args.policy,)
    else:
        raise CapacityError(
            f"unknown overload policy {args.policy!r}; "
            f"expected one of {POLICIES + ('both',)}")
    retry = None
    if args.fault_rate > 0:
        retry = _apply_retry_overrides(preset("default"), args.retries,
                                       args.timeout_ms)
    elif args.retries is not None or args.timeout_ms is not None:
        raise CapacityError(
            "--retries/--timeout-ms only apply with --fault-rate > 0 "
            "(they shape the retry policy of the faulted service sampling)")
    rows = sweep(app, args.platform, instances=args.instances,
                 requests=args.requests, seed=args.seed,
                 deadline_factor=args.deadline_factor,
                 factors=tuple(args.factors), policies=policies,
                 fault_rate=args.fault_rate, retry=retry)
    first = rows[0]
    print(f"overload sweep: {app} on {args.platform}, "
          f"{args.instances} instance(s), capacity "
          f"{first['capacity_rps']:.2f} rps, deadline "
          f"{first['deadline_ms']:.1f} ms "
          f"({args.deadline_factor:g}x mean service)")
    header = (f"  {'factor':>6s} {'policy':>7s} {'offered':>8s} "
              f"{'goodput':>8s} {'p99_ms':>9s} {'shed':>5s} {'rej':>5s} "
              f"{'expired':>7s} {'done':>5s}")
    print(header)
    for row in rows:
        print(f"  {row['factor']:6.2f} {row['policy']:>7s} "
              f"{row['offered_rps']:8.2f} {row['goodput_rps']:8.2f} "
              f"{row['p99_ms']:9.1f} {row['shed']:5d} {row['rejected']:5d} "
              f"{row['expired']:7d} {row['completed']:5d}")
    print(f"\n[{args.requests} request(s) per cell; goodput = "
          f"deadline-meeting completions/s; deterministic under --seed]")
    return 0


def _cmd_coldstart(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.coldstart import summary_flags, sweep

    app = _normalize_workload(args.app)
    duration_ms = args.duration_s * 1000.0
    rows = sweep(app, seed=args.seed, duration_ms=duration_ms,
                 service_samples=args.service_samples)
    flags = summary_flags(rows)
    print(f"coldstart sweep: {app}, {args.duration_s:g} s traces, "
          f"idle-memory budget {rows[0]['budget_mb']:.1f} MB for every arm")
    header = (f"  {'trace':>8s} {'platform':>10s} {'arm':>10s} "
              f"{'p50_ms':>8s} {'p99_ms':>8s} {'warm%':>6s} "
              f"{'cold':>5s} {'snap':>5s} {'pool':>5s} {'warm':>5s} "
              f"{'evict':>5s} {'idle_mb':>8s}")
    print(header)
    for row in rows:
        print(f"  {row['trace']:>8s} {row['platform']:>10s} "
              f"{row['arm']:>10s} {row['p50_ms']:8.1f} "
              f"{row['p99_ms']:8.1f} {row['warm_hit_rate']:6.1%} "
              f"{row['cold']:5d} {row['snapshot']:5d} {row['pool']:5d} "
              f"{row['warm']:5d} {row['evictions']:5d} "
              f"{row['mean_idle_mb']:8.1f}")
    print(f"\n[diurnal p99: hybrid {flags.get('hybrid_p99_ms', 0):.1f} ms "
          f"vs always-cold {flags.get('ttl0_p99_ms', 0):.1f} ms; "
          f"hybrid beats ttl0: {flags.get('hybrid_beats_ttl0_p99')}; "
          f"chiron tops warm-hit at equal memory: "
          f"{flags.get('chiron_tops_warm_hit')}]")
    if args.out:
        report = {"experiment": "coldstart", "app": app,
                  "seed": args.seed, "duration_ms": duration_ms,
                  "summary": flags, "rows": rows}
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"report written to {args.out}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.apps import workload
    from repro.core import ChironManager
    from repro.localexec import LocalExecutor

    wf = workload(args.workload)
    # scale behaviours down so the demo runs in ~a second on any laptop
    demo_wf = wf.map_behaviors(lambda b: b.scaled(cpu_factor=0.2,
                                                  io_factor=0.2))
    manager = ChironManager()
    plan = manager.plan(demo_wf, slo_ms=args.slo)
    print(f"plan: {plan.n_wraps} wrap(s), {plan.total_cores} CPU(s), "
          f"predicted {plan.predicted_latency_ms:.1f} ms (scaled demo)")
    with LocalExecutor(demo_wf, plan) as executor:
        result = executor.run()
    print(f"real execution: {result.latency_ms:.1f} ms wall, "
          f"{len(result.function_ms)} functions ran")
    for name, ms in sorted(result.function_ms.items()):
        print(f"  {name:24s} {ms:7.2f} ms")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        DEFAULT_SEARCH_BUDGETS,
        DEFAULT_SLO_FACTORS,
        QUICK_SEARCH_BUDGETS,
        QUICK_WORKLOADS,
        format_search_table,
        format_table,
        run_bench,
        run_search_bench,
        write_report,
    )

    if args.kernel:
        from repro.kernelbench import format_kernel_table, run_kernel_bench

        report = run_kernel_bench(quick=args.quick, check=args.check,
                                  seed=args.seed)
        out = args.out
        if out == "BENCH_pgp.json":  # the cache-bench default; redirect
            out = "BENCH_kernel.json"
        print(format_kernel_table(report))
        if out:
            write_report(report, out)
            print(f"report written to {out}")
        return 0
    if args.fleet:
        from repro.fleet.bench import format_fleet_table, run_fleet_bench

        report = run_fleet_bench(quick=args.quick, seed=args.seed)
        out = args.out
        if out == "BENCH_pgp.json":  # the cache-bench default; redirect
            out = "BENCH_fleet.json"
        print(format_fleet_table(report))
        if out:
            write_report(report, out)
            print(f"report written to {out}")
        failed = sorted(k for k, v in report["summary"].items() if not v)
        if failed:
            print(f"FAILED acceptance flags: {', '.join(failed)}")
            return 1
        return 0
    workloads = args.workloads
    if workloads is None and args.quick:
        workloads = list(QUICK_WORKLOADS)
    if args.search:
        budgets = args.budgets
        if budgets is None:
            budgets = (QUICK_SEARCH_BUDGETS if args.quick
                       else DEFAULT_SEARCH_BUDGETS)
        report = run_search_bench(
            workloads,
            slo_factors=args.slo_factors or DEFAULT_SLO_FACTORS,
            budgets=budgets, seed=args.seed, restarts=args.restarts)
        out = args.out
        if out == "BENCH_pgp.json":  # the cache-bench default; redirect
            out = "BENCH_search.json"
        print(format_search_table(report))
        if out:
            write_report(report, out)
            print(f"report written to {out}")
        return 0
    report = run_bench(workloads,
                       slo_factors=args.slo_factors or DEFAULT_SLO_FACTORS,
                       check=args.check)
    print(format_table(report))
    if args.out:
        write_report(report, args.out)
        print(f"report written to {args.out}")
    return 0


def _cmd_drift(args: argparse.Namespace) -> int:
    from repro.bench import write_report
    from repro.experiments.drift_recovery import (SCENARIOS,
                                                  format_drift_table, sweep)

    scenarios = tuple(args.scenarios) if args.scenarios else SCENARIOS
    report = sweep(seed=args.seed, quick=args.quick, scenarios=scenarios)
    print(format_drift_table(report))
    if args.out:
        write_report(report, args.out)
        print(f"report written to {args.out}")
    flags = report["summary"]
    failed = sorted(k for k, v in flags.items() if not v)
    if failed:
        print(f"FAILED acceptance flags: {', '.join(failed)}")
        return 1
    return 0


def _parse_fault(text: str) -> tuple:
    """Parse a ``TARGET:AT_MS:DOWN_MS`` fault argument (target may be a
    machine name like ``z0/r1/m2`` or a domain like ``zone:z1``)."""
    from repro.errors import SimulationError

    parts = text.rsplit(":", 2)
    if len(parts) != 3:
        raise SimulationError(
            f"bad fault spec {text!r} (expected TARGET:AT_MS:DOWN_MS)")
    try:
        return parts[0], float(parts[1]), float(parts[2])
    except ValueError:
        raise SimulationError(
            f"bad fault spec {text!r} (AT_MS and DOWN_MS must be numbers)")


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.bench import write_report
    from repro.core.search import SearchOptions
    from repro.faults.domains import ChaosPlan
    from repro.fleet import (PLACEMENT_METHODS, FleetPlacer, compile_fleet,
                             run_fleet, synth_fleet)

    spec = synth_fleet(tenants=args.tenants,
                       workloads_per_tenant=args.workloads,
                       requests_per_stream=args.requests,
                       rps=args.rps, seed=args.seed)
    fleet = compile_fleet(spec)
    print(f"fleet: {len(spec.streams)} streams / "
          f"{spec.total_requests:,} requests, {len(fleet.units)} wrap "
          f"units / {fleet.demand_cores():.0f} cores on "
          f"{len(fleet.machines)} machines in {spec.zones} zones")
    chaos = None
    if args.kill or args.outage:
        plan = ChaosPlan(seed=args.seed)
        for text in args.kill or []:
            target, at_ms, down_ms = _parse_fault(text)
            plan = plan.kill(target, at_ms, down_ms)
        for text in args.outage or []:
            target, at_ms, down_ms = _parse_fault(text)
            plan = plan.outage(target, at_ms, down_ms)
        chaos = plan.compile(fleet.topology)
        print(f"chaos: {len(chaos.events)} scheduled event(s)")
    methods = (list(PLACEMENT_METHODS) if args.method == "all"
               else [args.method])
    placer = FleetPlacer(fleet)
    print(f"  {'method':>10s} {'cost':>11s} {'mach':>5s} {'pack':>6s} "
          f"{'p99_ms':>10s} {'goodput':>8s} {'fair':>6s} {'disrupt':>8s} "
          f"{'sv':>3s}")
    rows = {}
    for method in methods:
        placement = placer.place(
            method, seed=args.seed,
            options=SearchOptions(budget=args.budget, seed=args.seed))
        placement.validate(fleet)
        report = run_fleet(fleet, placement, chaos=chaos)
        print(f"  {method:>10s} {placement.cost:11.1f} "
              f"{placement.machines_used(fleet):5d} "
              f"{placement.packing_fraction(fleet):6.3f} "
              f"{report.sojourn.p99_ms:10.2f} "
              f"{report.goodput_fraction:8.3f} "
              f"{report.fairness_jain:6.3f} {report.disrupted:8d} "
              f"{placement.spread_violations(fleet):3d}")
        rows[method] = {
            "cost": placement.cost,
            "breakdown": dict(placement.breakdown),
            "machines_used": placement.machines_used(fleet),
            "packing_fraction": placement.packing_fraction(fleet),
            "spread_violations": placement.spread_violations(fleet),
            "run": {**report.quality_fields(), **report.fleet_fields()},
        }
    if args.out:
        write_report({"experiment": "fleet", "seed": args.seed,
                      "tenants": args.tenants,
                      "workloads_per_tenant": args.workloads,
                      "requests_per_stream": args.requests,
                      "rps": args.rps, "rows": rows}, args.out)
        print(f"report written to {args.out}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.bench import write_report
    from repro.experiments.chaos import (SCHEDULES, format_chaos_table,
                                         sweep)

    schedules = tuple(args.schedules) if args.schedules else SCHEDULES
    report = sweep(seed=args.seed, quick=args.quick, schedules=schedules)
    print(format_chaos_table(report))
    if args.out:
        write_report(report, args.out)
        print(f"report written to {args.out}")
    flags = report["summary"]
    failed = sorted(k for k, v in flags.items() if not v)
    if failed:
        print(f"FAILED acceptance flags: {', '.join(failed)}")
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="chiron-repro",
        description="Reproduction of Chiron (SC '23): m-to-n serverless "
                    "deployment with wraps and PGP.")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments") \
        .set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("experiment")
    p_run.add_argument("--quick", action="store_true",
                       help="reduced repeats/sweeps")
    p_run.add_argument("--chart", action="store_true",
                       help="append an ASCII bar chart of the last column")
    p_run.set_defaults(func=_cmd_run)

    p_all = sub.add_parser("run-all", help="run every experiment")
    p_all.add_argument("--quick", action="store_true")
    p_all.set_defaults(func=_cmd_run_all)

    p_plan = sub.add_parser("plan", help="show PGP's plan for a workload")
    p_plan.add_argument("--workload", default="finra-50")
    p_plan.add_argument("--slo", type=float, default=150.0)
    p_plan.add_argument("--show-code", action="store_true",
                        help="print generated orchestrator sources")
    p_plan.add_argument("--save", metavar="FILE",
                        help="write the plan as JSON")
    p_plan.set_defaults(func=_cmd_plan)

    p_replay = sub.add_parser(
        "replay", help="execute a saved plan on the simulated platform")
    p_replay.add_argument("plan_file")
    p_replay.add_argument("--workload", required=True)
    p_replay.add_argument("--requests", type=int, default=10)
    p_replay.set_defaults(func=_cmd_replay)

    p_trace = sub.add_parser(
        "trace", help="trace one request and compare against the predictor")
    p_trace.add_argument("workload", nargs="?", default="finra-5",
                         help="workload name (e.g. finra-5, social-network)")
    p_trace.add_argument("--slo", type=float, default=None,
                         help="SLO in ms (default: 1.4x the critical path)")
    p_trace.add_argument("--out", metavar="FILE", default="trace.json",
                         help="Chrome trace-event JSON output "
                              "(default trace.json; '' to skip)")
    p_trace.add_argument("--warm", action="store_true",
                         help="skip the cold sandbox boot")
    p_trace.add_argument("--timeline", type=int, nargs="?", const=100,
                         default=None, metavar="WIDTH",
                         help="also print an ASCII timeline")
    p_trace.add_argument("--metrics", action="store_true",
                         help="also print the counter/histogram registry")
    p_trace.set_defaults(func=_cmd_trace)

    p_faults = sub.add_parser(
        "faults", help="inject sandbox crashes and compare blast radius")
    p_faults.add_argument("app", nargs="?", default="finra-5",
                          help="workload name (default finra-5)")
    p_faults.add_argument("--rate", type=float, default=0.05,
                          help="per-function sandbox crash rate (default .05)")
    p_faults.add_argument("--seed", type=int, default=1,
                          help="fault plan seed (default 1)")
    p_faults.add_argument("--policy", default="default",
                          help="retry policy preset: default, eager, "
                               "patient, none")
    p_faults.add_argument("--requests", type=int, default=20,
                          help="seeded requests per platform (default 20)")
    p_faults.add_argument("--platforms", nargs="+", metavar="NAME",
                          help="platforms to compare (default: openfaas "
                               "chiron faastlane)")
    p_faults.add_argument("--retries", type=int, default=None,
                          help="override the preset's max attempts")
    p_faults.add_argument("--timeout-ms", type=float, default=None,
                          help="override the preset's per-attempt timeout")
    p_faults.set_defaults(func=_cmd_faults)

    p_over = sub.add_parser(
        "overload", help="sweep offered load past saturation and compare "
                         "overload policies")
    p_over.add_argument("app", nargs="?", default="finra-5",
                        help="workload name (default finra-5)")
    p_over.add_argument("--platform", default="faastlane",
                        help="platform to load (default faastlane)")
    p_over.add_argument("--instances", type=int, default=2,
                        help="replica count (default 2)")
    p_over.add_argument("--requests", type=int, default=300,
                        help="arrivals per cell (default 300)")
    p_over.add_argument("--deadline-factor", type=float, default=3.0,
                        help="per-request deadline as a multiple of mean "
                             "service time (default 3.0)")
    p_over.add_argument("--factors", type=float, nargs="+",
                        default=[0.5, 0.8, 1.0, 1.5, 2.0], metavar="F",
                        help="offered load as multiples of capacity")
    p_over.add_argument("--policy", default="both",
                        help="overload policy: none, admit, or both")
    p_over.add_argument("--seed", type=int, default=7,
                        help="arrival/service seed (default 7)")
    p_over.add_argument("--fault-rate", type=float, default=0.0,
                        help="sandbox crash rate while sampling service "
                             "times (default 0: fault-free)")
    p_over.add_argument("--retries", type=int, default=None,
                        help="retry attempts for faulted sampling")
    p_over.add_argument("--timeout-ms", type=float, default=None,
                        help="per-attempt timeout for faulted sampling")
    p_over.set_defaults(func=_cmd_overload)

    p_cold = sub.add_parser(
        "coldstart", help="sweep keep-alive policy x traffic burstiness "
                          "through the sandbox lifecycle manager (writes "
                          "BENCH_coldstart.json)")
    p_cold.add_argument("app", nargs="?", default="finra-5",
                        help="workload name (default finra-5)")
    p_cold.add_argument("--duration-s", type=float, default=600.0,
                        help="arrival-trace length in seconds (default 600)")
    p_cold.add_argument("--service-samples", type=int, default=12,
                        help="jittered warm-latency samples per platform "
                             "(default 12)")
    p_cold.add_argument("--seed", type=int, default=11,
                        help="arrival/jitter seed (default 11)")
    p_cold.add_argument("--out", metavar="FILE",
                        default="BENCH_coldstart.json",
                        help="JSON report path (default BENCH_coldstart."
                             "json; '' to skip)")
    p_cold.set_defaults(func=_cmd_coldstart)

    p_demo = sub.add_parser("demo",
                            help="execute a plan with real threads/processes")
    p_demo.add_argument("--workload", default="social-network")
    p_demo.add_argument("--slo", type=float, default=100.0)
    p_demo.set_defaults(func=_cmd_demo)

    p_bench = sub.add_parser(
        "bench", help="benchmark PGP scheduling with the prediction cache "
                      "on vs. off (writes BENCH_pgp.json)")
    p_bench.add_argument("--workloads", nargs="+", metavar="NAME",
                         default=None,
                         help="workloads to schedule (default: the full "
                              "catalog matrix)")
    p_bench.add_argument("--slo-factors", type=float, nargs="+", metavar="F",
                         default=None,
                         help="SLOs as multiples of each workflow's "
                              "critical path (default: 1.2 1.5 2.0 3.0)")
    p_bench.add_argument("--quick", action="store_true",
                         help="small workload matrix (the CI smoke set)")
    p_bench.add_argument("--check", action="store_true",
                         help="verify mode: recompute every cache hit and "
                              "fail on any divergence")
    p_bench.add_argument("--out", metavar="FILE", default="BENCH_pgp.json",
                         help="JSON report path (default BENCH_pgp.json, "
                              "or BENCH_search.json with --search; "
                              "'' to skip)")
    p_bench.add_argument("--kernel", action="store_true",
                         help="benchmark the simulation kernel instead: "
                              "events/sec on heap vs calendar schedulers "
                              "plus fleet-scale request throughput, with "
                              "bit-identity checks (writes "
                              "BENCH_kernel.json)")
    p_bench.add_argument("--fleet", action="store_true",
                         help="benchmark multi-tenant fleet placement "
                              "instead: random vs first-fit vs annealed "
                              "on p99/goodput/packing over a >=1M-request "
                              "run, with a bit-reproducibility check "
                              "(writes BENCH_fleet.json)")
    p_bench.add_argument("--search", action="store_true",
                         help="benchmark the anytime plan search instead: "
                              "KL vs. SA vs. portfolio plan cost across "
                              "the catalog x SLO factors (writes "
                              "BENCH_search.json)")
    p_bench.add_argument("--budgets", type=int, nargs="+", metavar="N",
                         default=None,
                         help="[--search] move-evaluation budgets for the "
                              "anytime curve (default: 50 200 800, or "
                              "25 100 with --quick)")
    p_bench.add_argument("--seed", type=int, default=0,
                         help="[--search] rng seed (default 0)")
    p_bench.add_argument("--restarts", type=int, default=2,
                         help="[--search] portfolio random-restart arms "
                              "(default 2)")
    p_bench.set_defaults(func=_cmd_bench)

    p_drift = sub.add_parser(
        "drift", help="self-healing re-deployment under calibration drift: "
                      "closed loop (detect/canary/promote/rollback) vs. "
                      "open loop (writes BENCH_drift.json)")
    p_drift.add_argument("--scenario", dest="scenarios", action="append",
                         choices=["drift-recovery", "bad-replan",
                                  "fault-storm"],
                         help="run only this scenario (repeatable; "
                              "default: all three)")
    p_drift.add_argument("--quick", action="store_true",
                         help="shorter serving runs (the CI smoke set)")
    p_drift.add_argument("--seed", type=int, default=7,
                         help="scenario seed (default 7)")
    p_drift.add_argument("--out", metavar="FILE", default="BENCH_drift.json",
                         help="JSON report path (default BENCH_drift.json; "
                              "'' to skip)")
    p_drift.set_defaults(func=_cmd_drift)

    p_chaos = sub.add_parser(
        "chaos", help="machine-scale chaos schedules (kill/outage/"
                      "partition) vs. workflow HA modes: availability, "
                      "p99 and goodput recovery (writes BENCH_chaos.json)")
    p_chaos.add_argument("--schedule", dest="schedules", action="append",
                         choices=["machine-kill", "zone-outage",
                                  "partition"],
                         help="run only this fault schedule (repeatable; "
                              "default: all three)")
    p_chaos.add_argument("--quick", action="store_true",
                         help="shorter serving horizon (the CI smoke set)")
    p_chaos.add_argument("--seed", type=int, default=7,
                         help="chaos seed (default 7)")
    p_chaos.add_argument("--out", metavar="FILE", default="BENCH_chaos.json",
                         help="JSON report path (default BENCH_chaos.json; "
                              "'' to skip)")
    p_chaos.set_defaults(func=_cmd_chaos)

    p_fleet = sub.add_parser(
        "fleet", help="compile a multi-tenant fleet from the app catalog, "
                      "place it (random/first-fit/greedy/anneal) and "
                      "execute it deterministically on the vectorized "
                      "fast path")
    p_fleet.add_argument("--tenants", type=int, default=6,
                         help="tenant count (default 6)")
    p_fleet.add_argument("--workloads", type=int, default=3,
                         help="workflows per tenant (default 3; the last "
                              "round is the wide app)")
    p_fleet.add_argument("--requests", type=int, default=2_000,
                         help="requests per stream (default 2000)")
    p_fleet.add_argument("--rps", type=float, default=40.0,
                         help="mean per-stream arrival rate (default 40)")
    p_fleet.add_argument("--seed", type=int, default=0,
                         help="fleet/placement seed (default 0)")
    p_fleet.add_argument("--method", default="all",
                         choices=["all", "random", "first-fit", "greedy",
                                  "anneal"],
                         help="placement method(s) to run (default all)")
    p_fleet.add_argument("--budget", type=int, default=6_000,
                         help="annealing move budget (default 6000)")
    p_fleet.add_argument("--kill", action="append", metavar="M:AT:DOWN",
                         help="chaos: kill machine M at AT ms for DOWN ms "
                              "(repeatable, e.g. z0/r0/m0:5000:20000)")
    p_fleet.add_argument("--outage", action="append", metavar="D:AT:DOWN",
                         help="chaos: outage of domain D (e.g. zone:z1) "
                              "at AT ms for DOWN ms (repeatable)")
    p_fleet.add_argument("--out", metavar="FILE", default=None,
                         help="optional JSON report path")
    p_fleet.set_defaults(func=_cmd_fleet)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.errors import ReproError

    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, KeyError) as exc:
        # unknown experiment/workload/preset names raise ReproError with a
        # message that lists the valid choices — turn it into a one-liner
        # instead of a traceback
        msg = exc.args[0] if exc.args else str(exc)
        print(f"chiron-repro: error: {msg}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
