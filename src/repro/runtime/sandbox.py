"""Sandboxes: the container/microVM a wrap (or single function) deploys into."""

from __future__ import annotations

from typing import Generator, Optional

from repro.calibration import RuntimeCalibration
from repro.errors import SimulationError
from repro.runtime.cpusched import FluidCPU
from repro.runtime.osproc import SimProcess
from repro.runtime.pool import ProcessPool
from repro.simcore import Environment, Event
from repro.simcore.monitor import TraceRecorder


class Sandbox:
    """One container with a dedicated cpuset and an orchestrator process.

    The orchestrator (``main_process``) is the of-watchdog-style entry that
    receives the request and runs/forks the wrap's functions.  ``cores`` is
    the cgroup cpuset size; the paper allocates whole CPUs (§6 "we use a
    whole CPU as the allocation unit").
    """

    def __init__(self, env: Environment, *, name: str, cores: float,
                 cal: RuntimeCalibration,
                 trace: Optional[TraceRecorder] = None) -> None:
        if cores <= 0:
            raise SimulationError(f"sandbox needs > 0 cores, got {cores}")
        self.env = env
        self.name = name
        self.cores = float(cores)
        self.cal = cal
        self.trace = trace
        self.cpu = FluidCPU(env, cores)
        self.main_process = SimProcess(env, name=f"{name}/orch", cpu=self.cpu,
                                       cal=cal, trace=trace)
        self._pool: Optional[ProcessPool] = None
        self.booted = False
        #: set by :meth:`crash`; a crashed sandbox must be replaced, not
        #: rebooted — its processes/threads are gone.
        self.crashed = False

    def boot(self, cold: bool = False) -> Generator[Event, None, None]:
        """Bring the sandbox up; a cold boot pays the container start cost.

        With a lifecycle session installed (``env.lifecycle``), the session
        decides the boot *tier* — an idle/pool hit is free, a snapshot
        restore pays a calibrated fraction of the cold cost, and only a true
        cold boot pays the full container start (plus the one-time
        snapshot-creation charge).  Without one, a cold boot is the flat
        calibrated cost, bit-identical to builds without the subsystem.
        """
        if cold and not self.booted:
            lifecycle = None
            if self.env.slots_armed:  # one load covers both slots below
                breakers = self.env.overload
                if breakers is not None:
                    # an open sandbox.boot breaker (consecutive crash/timeout
                    # retries) fast-fails instead of paying the cold start
                    breakers.check("sandbox.boot", self.name)
                lifecycle = self.env.lifecycle
            t0 = self.env.now
            if lifecycle is not None:
                tier, cost_ms = lifecycle.acquire(self.name, self.cal)
                yield self.env.timeout(cost_ms)
                if self.trace is not None:
                    self.trace.record(self.name, "startup", t0, self.env.now,
                                      op="sandbox.boot", tier=tier.value)
            else:
                yield self.env.timeout(self.cal.sandbox_cold_start_ms)
                if self.trace is not None:
                    self.trace.record(self.name, "startup", t0, self.env.now,
                                      op="sandbox.boot")
        else:
            yield self.env.timeout(0.0)
        self.booted = True

    def crash(self) -> None:
        """Kill the sandbox (injected fault): everything inside it is lost."""
        self.crashed = True
        self.booted = False
        if self.trace is not None and self.trace.detail:
            self.trace.event("sandbox.crash", entity=self.name)

    def reclaim(self) -> None:
        """The lifecycle reclaimer took the sandbox mid-flight.

        Indistinguishable from a crash to the work inside (processes and
        threads are gone, a replacement must boot), but recovery drivers
        treat it as recoverable without feeding circuit breakers — it is
        policy-driven, not a failing dependency.
        """
        self.crashed = True
        self.booted = False
        lifecycle = self.env.lifecycle
        if lifecycle is not None:
            lifecycle.reclaim_in_flight(self.name, self.env.now)
        if self.trace is not None and self.trace.detail:
            self.trace.event("sandbox.reclaim", entity=self.name)

    def init_pool(self, workers: int) -> ProcessPool:
        """Pre-fork a worker pool at deploy time (the -P variants)."""
        if self._pool is not None:
            raise SimulationError(f"{self.name} already has a pool")
        self._pool = ProcessPool(self.env, workers=workers, cpu=self.cpu,
                                 cal=self.cal, trace=self.trace,
                                 name=f"{self.name}/pool")
        return self._pool

    @property
    def pool(self) -> Optional[ProcessPool]:
        return self._pool
