"""Static memory accounting for deployments (Figures 8a and 16).

Memory is a structural property of a deployment, not a time-varying one, so
it is computed in closed form from the sandbox/process/thread/pool counts.
The dominant effect is runtime-and-library duplication across sandboxes
(§2.2 Observation 4: "77.2% in FINRA"), which many-to-one and m-to-n
deployments amortize.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.calibration import RuntimeCalibration
from repro.errors import DeploymentError


@dataclass(frozen=True)
class SandboxFootprint:
    """Structural description of one sandbox for memory accounting."""

    functions: int          # distinct functions bundled into the sandbox
    processes: int = 1      # interpreter processes alive at peak (>= 1)
    threads: int = 0        # function threads beyond process main threads
    pool_workers: int = 0   # pre-forked warm workers (the -P variants)

    def __post_init__(self) -> None:
        if self.functions < 0 or self.processes < 1:
            raise DeploymentError(f"invalid footprint {self}")
        if self.threads < 0 or self.pool_workers < 0:
            raise DeploymentError(f"invalid footprint {self}")


def sandbox_memory_mb(footprint: SandboxFootprint,
                      cal: RuntimeCalibration) -> float:
    """Resident memory of one sandbox.

    One full runtime (interpreter + shared libraries) per sandbox; extra
    processes pay only a copy-on-write delta; threads and pool workers add
    their own increments.
    """
    return (cal.sandbox_overhead_memory_mb
            + cal.runtime_base_memory_mb
            + footprint.functions * cal.function_unique_memory_mb
            + (footprint.processes - 1) * cal.process_cow_memory_mb
            + footprint.threads * cal.thread_memory_mb
            + footprint.pool_workers * cal.pool_worker_memory_mb)


def deployment_memory_mb(footprints: list[SandboxFootprint],
                         cal: RuntimeCalibration) -> float:
    """Total resident memory across every sandbox of a deployment."""
    return sum(sandbox_memory_mb(fp, cal) for fp in footprints)
