"""Simulated machine substrate.

Everything the paper's testbed provided is modelled here on top of the
:mod:`repro.simcore` kernel:

* :mod:`~repro.runtime.cpusched` — a processor-sharing ("fluid") CPU model:
  runnable entities share a cpuset's cores equally, so contention stretches
  wall-clock time exactly as co-located processes/threads contend on a node;
* :mod:`~repro.runtime.gil` — a CPython-style global interpreter lock with
  switch-interval handoff and CFS-like (min CPU time) waiter selection
  (paper Figure 2);
* :mod:`~repro.runtime.sandbox` / :mod:`~repro.runtime.osproc` /
  :mod:`~repro.runtime.thread` — containers, forked processes (with the
  serialized fork "block time" of Observation 2) and threads executing
  :class:`~repro.workflow.FunctionBehavior` segments;
* :mod:`~repro.runtime.pool` — warm process pools (§4 "True Parallelism");
* :mod:`~repro.runtime.network` — local gateway and ASF-style dispatchers
  (Figure 3) and pipe IPC;
* :mod:`~repro.runtime.storage` — S3/MinIO transfer latency (Figure 4);
* :mod:`~repro.runtime.machine` — nodes and clusters (Table 2);
* :mod:`~repro.runtime.isolation` — MPK/SFI overhead models plus a
  functional per-thread memory-key arena (§4, Table 1).
"""

from repro.runtime.cpusched import FluidCPU
from repro.runtime.gil import Gil
from repro.runtime.machine import Cluster, Machine
from repro.runtime.osproc import SimProcess
from repro.runtime.sandbox import Sandbox
from repro.runtime.thread import SimThread

__all__ = ["Cluster", "FluidCPU", "Gil", "Machine", "Sandbox", "SimProcess",
           "SimThread"]
