"""Simulated OS processes: fork costs, interpreter startup, thread fan-out.

Observation 2 of the paper is encoded here: forks issued by a parent are
*serialized* (the parent's main thread is occupied for the fork syscall), so
the j-th forked process waits ``(j-1) * fork_block`` before its own fork even
begins — the "block time" that can rival a cold start at high parallelism.
After the fork returns, the child pays an interpreter-startup cost, which
runs concurrently with the parent's remaining forks and with other children.
"""

from __future__ import annotations

from typing import Generator, Iterable, Optional, Sequence

from repro.calibration import RuntimeCalibration
from repro.errors import FaultError
from repro.runtime.cpusched import FluidCPU
from repro.runtime.gil import Gil
from repro.runtime.thread import SimThread
from repro.simcore import Environment, Event
from repro.simcore.monitor import TraceRecorder
from repro.workflow.model import FunctionSpec


class SimProcess:
    """A simulated interpreter process inside a sandbox.

    Owns a GIL (when the runtime has one) and a main thread.  Function
    execution spawns one :class:`SimThread` per function from the main
    thread, paying the thread-creation cost under the GIL — which reproduces
    Algorithm 1's "the main thread starts y functions per switch interval".
    """

    def __init__(self, env: Environment, *, name: str, cpu: FluidCPU,
                 cal: RuntimeCalibration,
                 trace: Optional[TraceRecorder] = None) -> None:
        self.env = env
        self.name = name
        self.cpu = cpu
        self.cal = cal
        self.trace = trace
        self.gil: Optional[Gil] = (
            Gil(env, cal.gil_switch_interval_ms) if cal.has_gil else None)
        self.main_thread = SimThread(env, name=f"{name}/main", cpu=cpu,
                                     gil=self.gil, cal=cal, trace=trace)
        #: threads spawned over the process lifetime (for memory accounting)
        self.threads: list[SimThread] = []

    # -- thread fan-out -------------------------------------------------------
    def spawn_function_threads(
            self, functions: Sequence[FunctionSpec],
    ) -> Generator[Event, None, list[Event]]:
        """Spawn one thread per function from the main thread.

        Returns the per-function completion events.  Creation costs are paid
        serially by the main thread while holding the GIL, so under
        contention only a few threads start per switch interval.
        """
        events: list[Event] = []
        for fn in functions:
            yield from self.main_thread.consume_cpu(
                self.cal.thread_startup_ms, kind="startup")
            thread = SimThread(self.env, name=f"{self.name}/{fn.name}",
                               cpu=self.cpu, gil=self.gil, cal=self.cal,
                               trace=self.trace)
            self.threads.append(thread)
            if self.trace is not None:
                self.trace.record(f"{self.name}/{fn.name}", "startup",
                                  self.env.now - self.cal.thread_startup_ms,
                                  self.env.now, op="thread.spawn")
            events.append(thread.start(fn.behavior))
        self.main_thread.drop_gil_if_held()
        return events

    def run_functions(self, functions: Sequence[FunctionSpec]
                      ) -> Generator[Event, None, None]:
        """Spawn threads for ``functions`` and wait for all of them."""
        events = yield from self.spawn_function_threads(functions)
        if events:
            yield self.env.all_of(events)

    # -- child-process entry ----------------------------------------------------
    def run_as_child(self, functions: Sequence[FunctionSpec],
                     ) -> Generator[Event, None, None]:
        """Fork-child body: interpreter startup, then run the functions."""
        t0 = self.env.now
        yield self.cpu.run(self.cal.process_startup_ms)
        if self.trace is not None:
            self.trace.record(self.name, "startup", t0, self.env.now,
                              op="proc.startup")
        if len(functions) == 1:
            # The single function executes directly on the fresh process's
            # main thread (no extra thread hop) — the Faastlane/SAND case.
            thread = SimThread(self.env, name=f"{self.name}/{functions[0].name}",
                               cpu=self.cpu, gil=self.gil, cal=self.cal,
                               trace=self.trace)
            self.threads.append(thread)
            yield self.env.process(thread.run_behavior(functions[0].behavior))
        else:
            yield from self.run_functions(functions)


class ForkResult:
    """Events and bookkeeping from a fork fan-out."""

    def __init__(self) -> None:
        self.children: list[SimProcess] = []
        self.done_events: list[Event] = []


def fork_children(env: Environment, parent: SimProcess,
                  groups: Sequence[Sequence[FunctionSpec]], *,
                  cal: RuntimeCalibration, cpu: FluidCPU,
                  trace: Optional[TraceRecorder] = None,
                  name_prefix: str = "proc",
                  ) -> Generator[Event, None, ForkResult]:
    """Fork one child per function group, serialized in the parent.

    The parent's main thread is occupied ``fork_block`` per fork (Observation
    2's block time); children initialize and execute concurrently.
    """
    result = ForkResult()
    for j, group in enumerate(groups):
        t0 = env.now
        # The parent's serialized occupancy is tagged apart from the child's
        # birth span so mechanism totals don't double-count the same time.
        yield from parent.main_thread.consume_cpu(cal.fork_block_ms,
                                                  kind="fork", op="fork.block")
        faults = env.faults
        if faults is not None and faults.fires("fork.fail", f"{name_prefix}-{j}"):
            # the syscall failed after occupying the parent for its block time
            parent.main_thread.drop_gil_if_held()
            if trace is not None:
                trace.record(f"{name_prefix}-{j}", "fault", t0, env.now,
                             op="fault.fork.fail")
            raise FaultError(f"fork of {name_prefix}-{j} failed", "fork.fail")
        if trace is not None:
            trace.record(f"{name_prefix}-{j}", "fork", t0, env.now, op="fork")
        child = SimProcess(env, name=f"{name_prefix}-{j}", cpu=cpu, cal=cal,
                           trace=trace)
        result.children.append(child)
        result.done_events.append(
            env.process(child.run_as_child(list(group)),
                        name=f"{name_prefix}-{j}"))
    parent.main_thread.drop_gil_if_held()
    return result
