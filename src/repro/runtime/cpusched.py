"""Processor-sharing CPU model.

A :class:`FluidCPU` owns ``capacity`` cores (a cpuset, in cgroups terms).
Runnable entities each demand one core; when more entities are runnable than
cores exist, every entity progresses at rate ``capacity / n_runnable`` (the
classic fluid approximation of a fair scheduler).  On every arrival or
departure the scheduler re-computes each entity's projected completion and
re-arms a single wake-up timer for the earliest one.

This gives deterministic, closed-form contention: 4 CPU-bound tasks on 3
cores each take 4/3 of their solo time — the effect Figure 7 measures.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SimulationError
from repro.simcore import Environment, Event

#: completion slack to absorb float accumulation error (milliseconds of work)
_EPS = 1e-9


class _Task:
    __slots__ = ("remaining", "event", "weight")

    def __init__(self, work_ms: float, event: Event, weight: float) -> None:
        self.remaining = work_ms
        self.event = event
        self.weight = weight


class FluidCPU:
    """A cpuset whose runnable tasks share cores by generalized fair sharing.

    ``run(work_ms)`` returns an event that fires once the caller has received
    ``work_ms`` of CPU time.  ``weight`` scales a task's share (defaults to
    1; used by ablations).
    """

    def __init__(self, env: Environment, capacity: float) -> None:
        if capacity <= 0:
            raise SimulationError(f"cpu capacity must be > 0, got {capacity}")
        self.env = env
        self.capacity = float(capacity)
        self._tasks: dict[int, _Task] = {}
        self._next_id = 0
        self._last_advance = env.now
        #: generation counter invalidating stale wake-up timers
        self._timer_gen = 0
        #: cumulative core-milliseconds of work completed (for accounting)
        self.consumed_core_ms = 0.0

    # -- public API -----------------------------------------------------------
    @property
    def runnable(self) -> int:
        """Number of tasks currently demanding CPU."""
        return len(self._tasks)

    def utilization(self) -> float:
        """Instantaneous fraction of the cpuset in use (0..1)."""
        if not self._tasks:
            return 0.0
        return min(1.0, self._total_weight() / self.capacity)

    def run(self, work_ms: float, weight: float = 1.0) -> Event:
        """Consume ``work_ms`` of CPU time; fires when the work completes."""
        if work_ms < 0:
            raise SimulationError(f"negative CPU work: {work_ms}")
        if weight <= 0:
            raise SimulationError(f"weight must be > 0, got {weight}")
        event = self.env.event()
        if work_ms == 0:
            event.succeed()
            return event
        self._advance()
        task_id = self._next_id
        self._next_id += 1
        self._tasks[task_id] = _Task(work_ms, event, weight)
        self._reschedule()
        return event

    # -- internals ------------------------------------------------------------
    def _total_weight(self) -> float:
        return sum(t.weight for t in self._tasks.values())

    def _rate(self, task: _Task) -> float:
        """Cores granted to ``task`` right now (<= 1 per task)."""
        total = self._total_weight()
        if total <= self.capacity:
            return 1.0
        return self.capacity * task.weight / total

    def _advance(self) -> None:
        """Progress all runnable tasks from the last checkpoint to now."""
        now = self.env.now
        dt = now - self._last_advance
        self._last_advance = now
        if dt <= 0 or not self._tasks:
            return
        for task in self._tasks.values():
            done = dt * self._rate(task)
            task.remaining -= done
            self.consumed_core_ms += done

    def _reschedule(self) -> None:
        """Complete finished tasks and arm the next wake-up."""
        finished = [tid for tid, t in self._tasks.items() if t.remaining <= _EPS]
        for tid in finished:
            task = self._tasks.pop(tid)
            self.consumed_core_ms += max(task.remaining, 0.0)
            task.event.succeed()
        self._timer_gen += 1
        if not self._tasks:
            return
        gen = self._timer_gen
        horizon = min(t.remaining / self._rate(t) for t in self._tasks.values())
        timer = self.env.timeout(max(horizon, 0.0))
        timer.callbacks.append(lambda _ev: self._on_timer(gen))

    def _on_timer(self, gen: int) -> None:
        if gen != self._timer_gen:
            return  # superseded by a later arrival/departure
        self._advance()
        self._reschedule()
