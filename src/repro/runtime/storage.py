"""Third-party storage services for intermediate data (Figure 4).

Under one-to-one deployment, stateless functions exchange intermediate data
through object stores: S3 for AWS Step Functions, MinIO for the local
OpenFaaS cluster.  Latency per operation is ``base + size / bandwidth``; a
function-to-function *exchange* is a put by the producer plus a get by the
consumer.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.calibration import (
    MINIO_BANDWIDTH_MB_PER_MS,
    MINIO_BASE_LATENCY_MS,
    S3_BANDWIDTH_MB_PER_MS,
    S3_BASE_LATENCY_MS,
)
from repro.errors import FaultError, SimulationError
from repro.simcore import Environment, Event
from repro.simcore.monitor import TraceRecorder


class StorageService:
    """A remote object store with affine transfer latency."""

    def __init__(self, env: Environment, *, name: str, base_latency_ms: float,
                 bandwidth_mb_per_ms: float,
                 trace: Optional[TraceRecorder] = None) -> None:
        if base_latency_ms < 0 or bandwidth_mb_per_ms <= 0:
            raise SimulationError("bad storage parameters")
        self.env = env
        self.name = name
        self.base_latency_ms = base_latency_ms
        self.bandwidth_mb_per_ms = bandwidth_mb_per_ms
        self.trace = trace
        self.bytes_moved_mb = 0.0
        self.operations = 0

    def op_latency_ms(self, size_mb: float) -> float:
        """Closed-form latency of one put or get."""
        if size_mb < 0:
            raise SimulationError(f"negative payload {size_mb}")
        return self.base_latency_ms + size_mb / self.bandwidth_mb_per_ms

    def exchange_latency_ms(self, size_mb: float) -> float:
        """Closed-form latency of a put+get exchange (Figure 4's metric)."""
        return 2 * self.op_latency_ms(size_mb)

    def _transfer(self, size_mb: float, kind: str, entity: str,
                  op: str) -> Generator[Event, None, None]:
        t0 = self.env.now
        faults = self.env.faults
        if faults is not None:
            mechanism = ("storage.read" if op.endswith("get")
                         else "storage.write")
            if faults.fires(mechanism, entity):
                # the store answers with an error after its base latency
                yield self.env.timeout(self.base_latency_ms)
                if self.trace is not None:
                    self.trace.record(entity, "fault", t0, self.env.now,
                                      store=self.name, op=f"fault.{mechanism}")
                raise FaultError(
                    f"{self.name} {op} failed for {entity}", mechanism)
            if faults.fires("net.partition", entity):
                # the path to the store is cut: burn the base latency, fail
                yield self.env.timeout(self.base_latency_ms)
                if self.trace is not None:
                    self.trace.record(entity, "fault", t0, self.env.now,
                                      store=self.name,
                                      op="fault.net.partition")
                raise FaultError(
                    f"network partition cut {self.name} {op} for {entity}",
                    "net.partition")
        self.operations += 1
        self.bytes_moved_mb += size_mb
        yield self.env.timeout(self.op_latency_ms(size_mb))
        if self.trace is not None:
            self.trace.record(entity, kind, t0, self.env.now,
                              size_mb=size_mb, store=self.name, op=op)

    def put(self, size_mb: float, entity: str = "storage",
            ) -> Generator[Event, None, None]:
        yield from self._transfer(size_mb, "rpc", entity, "storage.put")

    def get(self, size_mb: float, entity: str = "storage",
            ) -> Generator[Event, None, None]:
        yield from self._transfer(size_mb, "rpc", entity, "storage.get")

    def exchange(self, size_mb: float, entity: str = "storage",
                 ) -> Generator[Event, None, None]:
        """Producer put followed by consumer get."""
        yield from self.put(size_mb, entity)
        yield from self.get(size_mb, entity)

    # -- canned services ------------------------------------------------------
    @classmethod
    def s3(cls, env: Environment,
           trace: Optional[TraceRecorder] = None) -> "StorageService":
        return cls(env, name="s3", base_latency_ms=S3_BASE_LATENCY_MS,
                   bandwidth_mb_per_ms=S3_BANDWIDTH_MB_PER_MS, trace=trace)

    @classmethod
    def minio(cls, env: Environment,
              trace: Optional[TraceRecorder] = None) -> "StorageService":
        return cls(env, name="minio", base_latency_ms=MINIO_BASE_LATENCY_MS,
                   bandwidth_mb_per_ms=MINIO_BANDWIDTH_MB_PER_MS, trace=trace)
