"""Warm process pools (§4 "True Parallelism", the -P system variants).

A :class:`ProcessPool` pre-forks ``workers`` interpreter processes when the
sandbox initializes, so per-request startup shrinks to a task-dispatch cost.
Each worker runs one task at a time in its own process — its GIL is never
contended — giving true parallelism limited only by the sandbox's cpuset
(Chiron-P deliberately allocates fewer cores than workers and lets the fluid
scheduler share them, §4 last paragraph).
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

from repro.calibration import RuntimeCalibration
from repro.errors import SimulationError
from repro.runtime.cpusched import FluidCPU
from repro.runtime.thread import SimThread
from repro.simcore import Environment, Event, Resource
from repro.simcore.monitor import TraceRecorder
from repro.workflow.model import FunctionSpec


class ProcessPool:
    """A fixed-size pool of pre-forked worker processes."""

    def __init__(self, env: Environment, *, workers: int, cpu: FluidCPU,
                 cal: RuntimeCalibration,
                 trace: Optional[TraceRecorder] = None,
                 name: str = "pool") -> None:
        if workers < 1:
            raise SimulationError(f"pool needs >= 1 worker, got {workers}")
        self.env = env
        self.workers = workers
        self.cpu = cpu
        self.cal = cal
        self.trace = trace
        self.name = name
        self._slots = Resource(env, capacity=workers)
        #: tasks completed (for tests/metrics)
        self.completed = 0

    @property
    def memory_mb(self) -> float:
        """Resident cost of keeping the workers warm."""
        return self.workers * self.cal.pool_worker_memory_mb

    def _run_task(self, fn: FunctionSpec) -> Generator[Event, None, None]:
        with self._slots.request() as slot:
            yield slot
            faults = self.env.faults if self.env.slots_armed else None
            if faults is not None and faults.fires(
                    "pool.worker", f"{self.name}/{fn.name}"):
                # the worker died; the pool self-heals by re-forking it
                # before running the task (one interpreter startup of delay)
                respawn = SimThread(self.env,
                                    name=f"{self.name}/{fn.name}",
                                    cpu=self.cpu, gil=None, cal=self.cal,
                                    trace=self.trace)
                yield from respawn.consume_cpu(self.cal.process_startup_ms,
                                               kind="startup",
                                               op="pool.respawn")
            worker = SimThread(self.env, name=f"{self.name}/{fn.name}",
                               cpu=self.cpu, gil=None, cal=self.cal,
                               trace=self.trace)
            yield self.env.process(worker.run_behavior(fn.behavior))
            self.completed += 1

    def submit(self, fn: FunctionSpec) -> Event:
        """Queue one function; fires when a worker finished executing it."""
        return self.env.process(self._run_task(fn), name=f"{self.name}/{fn.name}")

    def map(self, dispatcher: SimThread, functions: Sequence[FunctionSpec],
            longest_first: bool = False) -> Generator[Event, None, list[Event]]:
        """Dispatch ``functions`` serially from ``dispatcher``.

        Each dispatch costs :attr:`RuntimeCalibration.pool_dispatch_ms` of
        dispatcher CPU.  ``longest_first`` starts long-running functions
        preferentially — Chiron-P's skew mitigation (Figure 15 discussion).
        """
        ordered = list(functions)
        if longest_first:
            ordered.sort(key=lambda f: f.behavior.solo_ms, reverse=True)
        events = []
        for dispatched, fn in enumerate(ordered):
            if self.env.slots_armed and self.env.deadline is not None:
                # a doomed request stops feeding the pool mid-stage; already
                # submitted tasks run out, the rest are cancelled
                from repro.overload.deadline import check_deadline

                check_deadline(self.env, entity=f"{self.name}/{fn.name}",
                               completed_stages=dispatched)
            yield from dispatcher.consume_cpu(self.cal.pool_dispatch_ms,
                                              kind="startup",
                                              op="pool.dispatch")
            events.append(self.submit(fn))
        dispatcher.drop_gil_if_held()
        return events
