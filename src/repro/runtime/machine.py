"""Worker nodes and clusters (Table 2's testbed)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.calibration import CLUSTER_NODES, NODE_CORES, NODE_MEMORY_MB
from repro.errors import CapacityError


@dataclass
class Allocation:
    """A granted (cores, memory) reservation on a machine."""

    machine: "Machine"
    cores: float
    memory_mb: float
    released: bool = False

    def release(self) -> None:
        if not self.released:
            self.machine._free(self)
            self.released = True


class Machine:
    """One worker node with finite cores and memory."""

    def __init__(self, name: str = "node-0", *, cores: float = NODE_CORES,
                 memory_mb: float = NODE_MEMORY_MB) -> None:
        if cores <= 0 or memory_mb <= 0:
            raise CapacityError("machine needs positive cores and memory")
        self.name = name
        self.cores = float(cores)
        self.memory_mb = float(memory_mb)
        self.cores_used = 0.0
        self.memory_used_mb = 0.0

    @property
    def cores_free(self) -> float:
        return self.cores - self.cores_used

    @property
    def memory_free_mb(self) -> float:
        return self.memory_mb - self.memory_used_mb

    def can_fit(self, cores: float, memory_mb: float) -> bool:
        return (self.cores_free >= cores - 1e-9
                and self.memory_free_mb >= memory_mb - 1e-9)

    def allocate(self, cores: float, memory_mb: float) -> Allocation:
        """Reserve resources; raises :class:`CapacityError` when full."""
        if cores < 0 or memory_mb < 0:
            raise CapacityError("negative resource request")
        if not self.can_fit(cores, memory_mb):
            raise CapacityError(
                f"{self.name}: need {cores} cores/{memory_mb:.0f} MB, have "
                f"{self.cores_free:g} cores/{self.memory_free_mb:.0f} MB free")
        self.cores_used += cores
        self.memory_used_mb += memory_mb
        return Allocation(self, cores, memory_mb)

    def _free(self, allocation: Allocation) -> None:
        self.cores_used -= allocation.cores
        self.memory_used_mb -= allocation.memory_mb

    def __repr__(self) -> str:
        return (f"Machine({self.name!r}, {self.cores_used:g}/{self.cores:g} "
                f"cores, {self.memory_used_mb:.0f}/{self.memory_mb:.0f} MB)")


class Cluster:
    """A fleet of machines with first-fit placement."""

    def __init__(self, nodes: int = CLUSTER_NODES, *,
                 cores_per_node: float = NODE_CORES,
                 memory_per_node_mb: float = NODE_MEMORY_MB) -> None:
        if nodes < 1:
            raise CapacityError("cluster needs at least one node")
        self.machines = [Machine(f"node-{i}", cores=cores_per_node,
                                 memory_mb=memory_per_node_mb)
                         for i in range(nodes)]

    def place(self, cores: float, memory_mb: float) -> Allocation:
        """First-fit placement across nodes."""
        for machine in self.machines:
            if machine.can_fit(cores, memory_mb):
                return machine.allocate(cores, memory_mb)
        raise CapacityError(
            f"no node can fit {cores} cores / {memory_mb:.0f} MB")

    @property
    def total_cores_free(self) -> float:
        return sum(m.cores_free for m in self.machines)

    @property
    def total_memory_free_mb(self) -> float:
        return sum(m.memory_free_mb for m in self.machines)
