"""Worker nodes and clusters (Table 2's testbed).

Machines carry the liveness and failure-domain topology fields the chaos
layer (:mod:`repro.faults.domains`) and the future fleet placement layer
need: every machine belongs to a rack inside a zone, can :meth:`~Machine.fail`
and :meth:`~Machine.recover` deterministically, and keeps a crash count for
the control plane's quarantine heuristics.  Allocation accounting is
hardened against double release and float drift: freeing more than was
allocated raises a :class:`~repro.errors.CapacityError` naming the machine,
and residual drift below an epsilon is clamped to exactly zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.calibration import CLUSTER_NODES, NODE_CORES, NODE_MEMORY_MB
from repro.errors import CapacityError

#: float-drift tolerance for allocation accounting (fractions of a core/MB)
_EPS = 1e-9

#: the placement policies understood by :func:`choose_machine`
PLACEMENT_POLICIES = ("first-fit", "best-fit", "spread")


@dataclass
class Allocation:
    """A granted (cores, memory) reservation on a machine.

    ``epoch`` snapshots the machine's boot epoch at grant time: a
    reservation made before a crash died with the machine, so releasing it
    after recovery is a no-op instead of corrupting the fresh accounting.
    ``owner`` is an optional tenant/workflow label so displaced work can be
    attributed per tenant when the machine fails.
    """

    machine: "Machine"
    cores: float
    memory_mb: float
    released: bool = False
    epoch: int = 0
    owner: Optional[str] = None

    def release(self) -> None:
        """Return the reservation; releasing twice is a safe no-op."""
        if not self.released:
            if self.epoch == self.machine.epoch:
                self.machine._free(self)
            self.released = True


class Machine:
    """One worker node with finite cores and memory.

    ``zone``/``rack`` place the machine in the failure-domain topology
    (empty strings for standalone machines); ``alive`` is flipped by the
    chaos layer's ``machine.crash``/``machine.recover``/``domain.outage``
    mechanisms and honoured by :meth:`Cluster.place`.
    """

    def __init__(self, name: str = "node-0", *, cores: float = NODE_CORES,
                 memory_mb: float = NODE_MEMORY_MB,
                 zone: str = "", rack: str = "") -> None:
        if cores <= 0 or memory_mb <= 0:
            raise CapacityError("machine needs positive cores and memory")
        self.name = name
        self.cores = float(cores)
        self.memory_mb = float(memory_mb)
        self.cores_used = 0.0
        self.memory_used_mb = 0.0
        # -- failure-domain topology / liveness -------------------------------
        self.zone = zone
        self.rack = rack
        self.alive = True
        #: simulated instant of the last :meth:`fail` (None = never failed)
        self.failed_at: Optional[float] = None
        #: total injected failures (feeds crash-loop quarantine heuristics)
        self.crash_count = 0
        #: boot epoch, bumped on every recovery; allocations from an older
        #: epoch died with the crash and must not free fresh capacity
        self.epoch = 0
        #: reservations currently holding capacity (for displaced attribution)
        self._live: list[Allocation] = []
        #: reservations that died with this machine, accumulated across every
        #: :meth:`fail` — lets quarantine/drain attribute lost work per owner
        self.displaced: list[Allocation] = []

    # -- liveness --------------------------------------------------------------
    def fail(self, at_ms: float = 0.0) -> None:
        """The machine goes dark (crash or domain outage); idempotent."""
        if self.alive:
            self.alive = False
            self.failed_at = float(at_ms)
            self.crash_count += 1
            self.displaced.extend(self._live)
            self._live = []

    def recover(self, at_ms: float = 0.0) -> None:
        """The machine comes back empty: everything it ran was lost."""
        if not self.alive:
            self.alive = True
            self.epoch += 1
            self.cores_used = 0.0
            self.memory_used_mb = 0.0

    @property
    def domain_key(self) -> tuple[str, str]:
        """(zone, rack) — the machine's failure-domain coordinates."""
        return (self.zone, self.rack)

    # -- capacity accounting ---------------------------------------------------
    @property
    def cores_free(self) -> float:
        return self.cores - self.cores_used

    @property
    def memory_free_mb(self) -> float:
        return self.memory_mb - self.memory_used_mb

    def can_fit(self, cores: float, memory_mb: float) -> bool:
        return (self.alive
                and self.cores_free >= cores - _EPS
                and self.memory_free_mb >= memory_mb - _EPS)

    def allocate(self, cores: float, memory_mb: float, *,
                 owner: Optional[str] = None) -> Allocation:
        """Reserve resources; raises :class:`CapacityError` when full."""
        if cores < 0 or memory_mb < 0:
            raise CapacityError("negative resource request")
        if not self.alive:
            raise CapacityError(f"{self.name} is down")
        if not self.can_fit(cores, memory_mb):
            raise CapacityError(
                f"{self.name}: need {cores} cores/{memory_mb:.0f} MB, have "
                f"{self.cores_free:g} cores/{self.memory_free_mb:.0f} MB free")
        self.cores_used += cores
        self.memory_used_mb += memory_mb
        self._assert_invariants()
        allocation = Allocation(self, cores, memory_mb, epoch=self.epoch,
                                owner=owner)
        self._live.append(allocation)
        return allocation

    def _free(self, allocation: Allocation) -> None:
        self._live = [a for a in self._live if a is not allocation]
        if (allocation.cores > self.cores_used + _EPS
                or allocation.memory_mb > self.memory_used_mb + _EPS):
            raise CapacityError(
                f"{self.name}: freeing {allocation.cores:g} cores/"
                f"{allocation.memory_mb:.0f} MB but only "
                f"{self.cores_used:g} cores/{self.memory_used_mb:.0f} MB "
                f"are allocated")
        self.cores_used -= allocation.cores
        self.memory_used_mb -= allocation.memory_mb
        # clamp float drift so long allocate/release sequences cannot leak
        # phantom capacity in either direction
        if abs(self.cores_used) <= _EPS:
            self.cores_used = 0.0
        if abs(self.memory_used_mb) <= _EPS:
            self.memory_used_mb = 0.0
        self._assert_invariants()

    def _assert_invariants(self) -> None:
        if not (-_EPS <= self.cores_used <= self.cores + _EPS):
            raise CapacityError(
                f"{self.name}: core accounting out of range "
                f"({self.cores_used:g} of {self.cores:g})")
        if not (-_EPS <= self.memory_used_mb <= self.memory_mb + _EPS):
            raise CapacityError(
                f"{self.name}: memory accounting out of range "
                f"({self.memory_used_mb:.0f} of {self.memory_mb:.0f} MB)")

    def __repr__(self) -> str:
        status = "" if self.alive else " DOWN"
        return (f"Machine({self.name!r}, {self.cores_used:g}/{self.cores:g} "
                f"cores, {self.memory_used_mb:.0f}/{self.memory_mb:.0f} MB"
                f"{status})")


def choose_machine(machines: Sequence[Machine], cores: float,
                   memory_mb: float, *,
                   policy: str = "first-fit") -> Optional[Machine]:
    """Pick the machine a (cores, memory) request lands on, or ``None``.

    This is the *single* placement decision point: :meth:`Cluster.place`
    (the autoscaler/ClusterDeployment path) and the fleet placer's global
    phase both route through it, so the policies stay comparable.

    - ``first-fit``: first live machine that fits, in list order.
    - ``best-fit``: the tightest fit (least cores free, then least memory
      free) — consolidates load onto few machines.
    - ``spread``: the emptiest machine in the least-loaded zone —
      dilutes noisy neighbours across failure domains.

    Ties break by list order (``min`` keeps the first minimum), so every
    policy is deterministic for a fixed machine ordering.
    """
    fits = [m for m in machines if m.can_fit(cores, memory_mb)]
    if not fits:
        return None
    if policy == "first-fit":
        return fits[0]
    if policy == "best-fit":
        return min(fits, key=lambda m: (m.cores_free, m.memory_free_mb))
    if policy == "spread":
        zone_used: dict[str, float] = {}
        for m in machines:
            if m.alive:
                zone_used[m.zone] = zone_used.get(m.zone, 0.0) + m.cores_used
        return min(fits, key=lambda m: (zone_used.get(m.zone, 0.0),
                                        m.cores_used, -m.cores_free))
    raise CapacityError(
        f"unknown placement policy {policy!r} "
        f"(expected one of {', '.join(PLACEMENT_POLICIES)})")


class Cluster:
    """A fleet of machines with pluggable placement over live nodes."""

    def __init__(self, nodes: int = CLUSTER_NODES, *,
                 cores_per_node: float = NODE_CORES,
                 memory_per_node_mb: float = NODE_MEMORY_MB,
                 machines: Optional[Iterable[Machine]] = None,
                 policy: str = "first-fit") -> None:
        if policy not in PLACEMENT_POLICIES:
            raise CapacityError(
                f"unknown placement policy {policy!r} "
                f"(expected one of {', '.join(PLACEMENT_POLICIES)})")
        if machines is not None:
            self.machines = list(machines)
            if not self.machines:
                raise CapacityError("cluster needs at least one node")
        else:
            if nodes < 1:
                raise CapacityError("cluster needs at least one node")
            self.machines = [Machine(f"node-{i}", cores=cores_per_node,
                                     memory_mb=memory_per_node_mb)
                             for i in range(nodes)]
        self.policy = policy

    @classmethod
    def of(cls, machines: Iterable[Machine], *,
           policy: str = "first-fit") -> "Cluster":
        """Wrap existing machines (e.g. a chaos topology) in a cluster."""
        return cls(machines=machines, policy=policy)

    def place(self, cores: float, memory_mb: float, *,
              owner: Optional[str] = None,
              policy: Optional[str] = None) -> Allocation:
        """Place across live nodes under this cluster's policy."""
        machine = choose_machine(self.machines, cores, memory_mb,
                                 policy=policy or self.policy)
        if machine is None:
            raise CapacityError(
                f"no live node can fit {cores} cores / {memory_mb:.0f} MB")
        return machine.allocate(cores, memory_mb, owner=owner)

    @property
    def live_machines(self) -> list[Machine]:
        return [m for m in self.machines if m.alive]

    @property
    def total_cores_free(self) -> float:
        return sum(m.cores_free for m in self.machines if m.alive)

    @property
    def total_memory_free_mb(self) -> float:
        return sum(m.memory_free_mb for m in self.machines if m.alive)
