"""Invocation paths: the local gateway, RPC, pipe IPC, and ASF dispatching.

Calibrated against §2.2 Observation 1 / Figure 3: the OpenFaaS gateway's
per-invocation cost grows with in-flight load (superlinear total overhead),
while AWS Step Functions dispatches states with ~150 ms latency, a bounded
concurrency window, and a serial issue gap.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.calibration import (
    ASF_DISPATCH_ISSUE_GAP_MS,
    ASF_DISPATCH_LATENCY_MS,
    ASF_MAX_CONCURRENT_DISPATCH,
    RuntimeCalibration,
)
from repro.errors import FaultError
from repro.simcore import Environment, Event, Resource
from repro.simcore.monitor import TraceRecorder


class Gateway:
    """The platform's HTTP front door (OpenFaaS gateway / faas-netes proxy).

    Invocation *processing* is serialized through the gateway (one request
    proxied at a time), with a per-request service time of ``base +
    per_inflight * inflight`` — load raises both queueing delay and unit
    cost (connection churn, provider lookups).  This reproduces Figure 3's
    superlinear scheduling overhead: ~2 ms for a 5-wide stage, ~180 ms at
    50-wide.  The network round trip ``t_rpc`` happens outside the serial
    section (flights overlap).
    """

    def __init__(self, env: Environment, cal: RuntimeCalibration,
                 trace: Optional[TraceRecorder] = None) -> None:
        self.env = env
        self.cal = cal
        self.trace = trace
        self._server = Resource(env, capacity=1)
        self._inflight = 0
        #: total invocations served (metrics)
        self.invocations = 0

    def invoke(self, *, payload_mb: float = 0.0, entity: str = "gateway",
               ) -> Generator[Event, None, None]:
        """One function invocation through the gateway (caller blocks)."""
        t0 = self.env.now
        breakers = None
        if self.env.slots_armed:  # one load skips both slot checks below
            breakers = self.env.overload
            if breakers is not None:
                # fast-fail BEFORE the fault draw: an open breaker skips the
                # timeout burn entirely — that skipped wait is its whole point
                breakers.check("rpc", entity)
            faults = self.env.faults
            if faults is not None and faults.fires("rpc.drop", entity):
                # request vanishes: the caller burns the RPC timeout waiting
                yield self.env.timeout(faults.plan.rpc_timeout_ms)
                if self.trace is not None:
                    self.trace.record(entity, "fault", t0, self.env.now,
                                      op="fault.rpc.drop")
                if breakers is not None:
                    breakers.record_failure("rpc", entity)
                raise FaultError(f"gateway dropped invocation for {entity}",
                                 "rpc.drop")
            if faults is not None and faults.fires("net.partition", entity):
                # the path is cut: same timeout burn, distinct mechanism so
                # breakers and the control plane can tell partition storms
                # apart
                yield self.env.timeout(faults.plan.rpc_timeout_ms)
                if self.trace is not None:
                    self.trace.record(entity, "fault", t0, self.env.now,
                                      op="fault.net.partition")
                if breakers is not None:
                    breakers.record_failure("rpc", entity)
                raise FaultError(
                    f"network partition cut invocation for {entity}",
                    "net.partition")
        self._inflight += 1
        self.invocations += 1
        service = (self.cal.gateway_service_base_ms
                   + self.cal.gateway_service_per_inflight_ms * self._inflight)
        transfer = payload_mb / self.cal.pipe_bandwidth_mb_per_ms
        detail = self.trace is not None and self.trace.detail
        try:
            with self._server.request() as slot:
                yield slot
                if detail and self.env.now > t0:
                    # time spent queued behind the serial proxy section —
                    # the load-dependent half of Figure 3's overhead
                    self.trace.record(entity, "queue", t0, self.env.now,
                                      op="gateway.queue")
                yield self.env.timeout(service)
            yield self.env.timeout(self.cal.t_rpc_ms + transfer)
        finally:
            self._inflight -= 1
        if breakers is not None:
            breakers.record_success("rpc", entity)
        if self.trace is not None:
            self.trace.record(entity, "rpc", t0, self.env.now, op="rpc")


class ASFDispatcher:
    """AWS Step Functions state dispatching (Figure 3's "ASF" series).

    Parallel-state branches are issued serially with a fixed gap, at most
    ``max_concurrent`` in flight, and each dispatch takes ``dispatch_latency``
    before the Lambda body starts.
    """

    def __init__(self, env: Environment, *,
                 dispatch_latency_ms: float = ASF_DISPATCH_LATENCY_MS,
                 issue_gap_ms: float = ASF_DISPATCH_ISSUE_GAP_MS,
                 max_concurrent: int = ASF_MAX_CONCURRENT_DISPATCH,
                 trace: Optional[TraceRecorder] = None) -> None:
        self.env = env
        self.dispatch_latency_ms = dispatch_latency_ms
        self.issue_gap_ms = issue_gap_ms
        self.trace = trace
        self._window = Resource(env, capacity=max_concurrent)
        #: state transitions performed (drives ASF's per-transition billing)
        self.transitions = 0

    def dispatch(self, index: int, entity: str = "asf",
                 ) -> Generator[Event, None, None]:
        """Dispatch the ``index``-th branch of a stage; returns at fn start.

        The caller must later call :meth:`complete` to free the window slot.
        """
        t0 = self.env.now
        breakers = None
        if self.env.slots_armed:
            breakers = self.env.overload
            if breakers is not None:
                breakers.check("rpc", entity)
            faults = self.env.faults
            if faults is not None and faults.fires("rpc.drop", entity):
                yield self.env.timeout(faults.plan.rpc_timeout_ms)
                if self.trace is not None:
                    self.trace.record(entity, "fault", t0, self.env.now,
                                      op="fault.rpc.drop")
                if breakers is not None:
                    breakers.record_failure("rpc", entity)
                raise FaultError(f"ASF dropped dispatch for {entity}",
                                 "rpc.drop")
        self.transitions += 1
        if index > 0:
            yield self.env.timeout(self.issue_gap_ms * index)
        with self._window.request() as slot:
            yield slot
            yield self.env.timeout(self.dispatch_latency_ms)
        # Slot released immediately: the dispatch window bounds concurrent
        # *dispatches*; function execution happens in Lambda, outside ASF.
        if breakers is not None:
            breakers.record_success("rpc", entity)
        if self.trace is not None:
            self.trace.record(entity, "rpc", t0, self.env.now,
                              op="asf.dispatch")


def ipc_collect(env: Environment, *, n_processes: int, data_mb: float,
                cal: RuntimeCalibration, trace: Optional[TraceRecorder] = None,
                entity: str = "ipc") -> Generator[Event, None, None]:
    """Pipe-based result collection inside a wrap (Eq. 3's IPC term).

    Cost is ``t_ipc * (n_processes - 1)`` — the paper counts interaction
    pairs, FINRA-5's measured 4.3 ms for five processes — plus streaming the
    intermediate data through the pipe.
    """
    pairs = max(0, n_processes - 1)
    # A lone process already holds its results in memory — no pipe, no
    # streaming.  Data transfer only applies once there are pipe pairs.
    stream = data_mb / cal.pipe_bandwidth_mb_per_ms if pairs else 0.0
    cost = cal.t_ipc_ms * pairs + stream
    t0 = env.now
    yield env.timeout(cost)
    if trace is not None and cost > 0:
        trace.record(entity, "ipc", t0, env.now, op="ipc")
