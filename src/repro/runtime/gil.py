"""A CPython-style global interpreter lock (paper Figure 2).

Semantics implemented:

* exactly one thread holds the GIL at a time; only the holder's CPU segments
  progress;
* a holder that keeps computing while others wait is asked to drop the lock
  after the *switch interval* (5 ms in CPython) — the thread model enforces
  this by computing in at-most-interval chunks and handing off when waiters
  exist;
* a thread voluntarily drops the GIL when it starts a blocking operation
  ("the thread actively drops the GIL during I/O operations");
* on a drop, the next holder is the non-blocked waiter with the **minimum
  accumulated CPU time** — mirroring the Completely Fair Scheduler choice the
  paper's Algorithm 1 uses (line 17).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import SimulationError
from repro.simcore import Environment, Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.thread import SimThread


class Gil:
    """GIL arbiter for one simulated interpreter process."""

    def __init__(self, env: Environment, switch_interval_ms: float = 5.0) -> None:
        if switch_interval_ms <= 0:
            raise SimulationError("switch interval must be > 0")
        self.env = env
        self.switch_interval_ms = switch_interval_ms
        self.holder: Optional["SimThread"] = None
        self._waiters: list[tuple["SimThread", Event]] = []
        #: number of acquire->release handoffs performed (for tests/metrics)
        self.switch_count = 0

    @property
    def contended(self) -> bool:
        """True if at least one thread is waiting for the lock."""
        return bool(self._waiters)

    def acquire(self, thread: "SimThread") -> Event:
        """Request the lock; fires when ``thread`` becomes the holder."""
        event = self.env.event()
        if self.holder is None:
            self.holder = thread
            event.succeed()
        elif self.holder is thread:
            raise SimulationError(f"{thread.name} already holds the GIL")
        else:
            self._waiters.append((thread, event))
        return event

    def release(self, thread: "SimThread") -> None:
        """Drop the lock and hand it to the fairest waiter, if any."""
        if self.holder is not thread:
            raise SimulationError(
                f"{thread.name} released a GIL held by "
                f"{self.holder.name if self.holder else 'nobody'}")
        self.holder = None
        if self._waiters:
            # CFS-like pick: the waiter with minimal accumulated CPU time;
            # arrival order breaks ties deterministically.
            index = min(range(len(self._waiters)),
                        key=lambda i: (self._waiters[i][0].cpu_time_ms, i))
            next_thread, event = self._waiters.pop(index)
            self.holder = next_thread
            self.switch_count += 1
            event.succeed()
