"""Simulated interpreter threads executing function behaviours.

A :class:`SimThread` consumes CPU through its cpuset's :class:`FluidCPU` and,
when the owning process has a GIL, computes in chunks bounded by the *switch
interval* so the lock is handed off exactly as CPython does (Figure 2): a
holder keeps the lock until it has accumulated one full switch interval of
CPU since acquiring it, then drops it *iff* someone is waiting; blocking I/O
always drops it.  Holding for the whole interval (rather than yielding after
every CPU burst) is what lets a main thread start a *batch* of ``y``
functions per interval — Algorithm 1 lines 4-5.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.calibration import RuntimeCalibration
from repro.errors import SimulationError
from repro.runtime.cpusched import FluidCPU
from repro.runtime.gil import Gil
from repro.simcore import Environment, Event
from repro.simcore.monitor import TraceRecorder
from repro.workflow.behavior import FunctionBehavior, SegmentKind

_EPS = 1e-9


class SimThread:
    """One thread of a simulated process.

    The same primitive backs function threads *and* process main threads
    (orchestrators/dispatchers), which call :meth:`consume_cpu` /
    :meth:`block` imperatively.
    """

    def __init__(self, env: Environment, *, name: str, cpu: FluidCPU,
                 gil: Optional[Gil], cal: RuntimeCalibration,
                 trace: Optional[TraceRecorder] = None) -> None:
        self.env = env
        self.name = name
        self.cpu = cpu
        self.gil = gil
        self.cal = cal
        self.trace = trace
        #: accumulated CPU milliseconds — the CFS key for GIL handoff.
        self.cpu_time_ms = 0.0
        self._holds_gil = False
        #: CPU consumed since the current GIL acquisition (the hold budget:
        #: a holder owes a handoff only after one full switch interval).
        self._hold_ms = 0.0
        #: set when the thread finished running a behaviour
        self.finished_at: Optional[float] = None
        self.started_at: Optional[float] = None

    # -- low-level primitives -------------------------------------------------
    def _acquire_gil(self) -> Generator[Event, None, None]:
        if self.gil is not None and not self._holds_gil:
            t0 = self.env.now
            yield self.gil.acquire(self)
            self._holds_gil = True
            self._hold_ms = 0.0
            if self.trace is not None and self.env.now > t0 + _EPS:
                self.trace.record(self.name, "wait", t0, self.env.now,
                                  op="gil.wait")

    def drop_gil_if_held(self) -> None:
        if self.gil is not None and self._holds_gil:
            self.gil.release(self)
            self._holds_gil = False

    def _maybe_handoff(self) -> None:
        """Drop the GIL if the hold budget is spent and someone is waiting.

        CPython's switch request fires one interval after contention begins;
        Algorithm 1 models it as interval-sized turns.  We approximate both:
        the holder owes a drop once it has consumed a full switch interval of
        CPU since acquiring, never mid-interval — so short bursts (thread
        spawns, forks) batch under one hold instead of round-tripping the
        lock per burst.
        """
        if (self.gil is not None and self._holds_gil
                and self._hold_ms >= self.gil.switch_interval_ms - _EPS):
            if self.gil.contended:
                self.gil.release(self)
                self._holds_gil = False
                if self.trace is not None and self.trace.detail:
                    self.trace.event("gil.handoff", entity=self.name)
            else:
                self._hold_ms = 0.0  # nobody waiting: a fresh interval begins

    def consume_cpu(self, work_ms: float, kind: str = "exec",
                    op: Optional[str] = None) -> Generator[Event, None, None]:
        """Execute ``work_ms`` of CPU time under GIL chunking rules.

        ``op`` tags the recorded chunks with a mechanism name (e.g.
        ``fork.block``, ``pool.dispatch``) for trace exports and the
        divergence reporter's per-mechanism totals.
        """
        if work_ms < 0:
            raise SimulationError(f"negative CPU work {work_ms}")
        remaining = work_ms
        while remaining > _EPS:
            yield from self._acquire_gil()
            if self.gil is not None:
                if self._hold_ms and not self.gil.contended:
                    # no switch request pending: CPython's drop-request timer
                    # only runs while a waiter exists, so the hold budget
                    # restarts (and partial holds don't fragment the chunk)
                    self._hold_ms = 0.0
                chunk = min(remaining,
                            self.gil.switch_interval_ms - self._hold_ms)
            else:
                chunk = remaining
            t0 = self.env.now
            yield self.cpu.run(chunk)
            self.cpu_time_ms += chunk
            self._hold_ms += chunk
            remaining -= chunk
            if self.trace is not None:
                if op is not None:
                    self.trace.record(self.name, kind, t0, self.env.now,
                                      op=op)
                else:
                    self.trace.record(self.name, kind, t0, self.env.now)
            self._maybe_handoff()

    def block(self, duration_ms: float,
              kind: str = "block") -> Generator[Event, None, None]:
        """Blocking I/O: drop the GIL, wait, leave the lock to others."""
        if duration_ms < 0:
            raise SimulationError(f"negative block duration {duration_ms}")
        self.drop_gil_if_held()
        t0 = self.env.now
        yield self.env.timeout(duration_ms)
        if self.trace is not None and duration_ms > 0:
            self.trace.record(self.name, kind, t0, self.env.now)

    # -- behaviour execution ----------------------------------------------------
    def run_behavior(self, behavior: FunctionBehavior
                     ) -> Generator[Event, None, float]:
        """Execute a function behaviour; returns wall-clock latency.

        The calibration's isolation overheads (Table 1) are applied here:
        per-function startup plus multiplicative CPU/IO execution inflation.
        """
        self.started_at = self.env.now
        if self.cal.isolation_startup_ms > 0:
            yield from self.consume_cpu(self.cal.isolation_startup_ms,
                                        kind="startup")
        cpu_scale = 1.0 + self.cal.exec_overhead_cpu
        io_scale = 1.0 + self.cal.exec_overhead_io
        faults = self.env.faults
        if faults is not None:
            # straggler injection: this execution runs uniformly slower
            slow = faults.straggler_scale(self.name)
            cpu_scale *= slow
            io_scale *= slow
        for segment in behavior:
            if segment.kind is SegmentKind.CPU:
                yield from self.consume_cpu(segment.duration_ms * cpu_scale)
            else:
                yield from self.block(segment.duration_ms * io_scale)
        self.drop_gil_if_held()
        self.finished_at = self.env.now
        return self.finished_at - self.started_at

    def start(self, behavior: FunctionBehavior):
        """Spawn the thread body as a kernel process; returns its event."""
        return self.env.process(self.run_behavior(behavior), name=self.name)
