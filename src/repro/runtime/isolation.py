"""Memory isolation between threads (§4, Table 1).

Two pieces:

* **Overhead models** — apply Table 1's startup/interaction/execution costs
  of SFI (WebAssembly) and Intel MPK to behaviours and calibrations; the
  platforms' -M variants build on these through
  :meth:`repro.calibration.RuntimeCalibration.mpk` / ``.sfi``.

* **A functional MPK arena** — a working model of protection-keyed memory:
  pages are grouped into arenas tagged with a protection key; each thread
  holds a PKRU-style access-rights register; reads/writes through the wrong
  key raise :class:`~repro.errors.IsolationFault`.  This gives the paper's
  "private arenas for each thread" semantics a testable implementation (the
  real Chiron uses the mpk-memalloc module from Faastlane).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.calibration import (
    MPK_EXEC_OVERHEAD_CPU,
    MPK_EXEC_OVERHEAD_IO,
    MPK_INTERACTION_MS,
    MPK_STARTUP_MS,
    SFI_EXEC_OVERHEAD_CPU,
    SFI_EXEC_OVERHEAD_IO,
    SFI_INTERACTION_MS,
    SFI_STARTUP_MS,
)
from repro.errors import IsolationFault
from repro.workflow.behavior import FunctionBehavior

#: Intel MPK exposes 16 protection keys; key 0 is conventionally "shared".
NUM_PROTECTION_KEYS = 16
SHARED_KEY = 0


@dataclass(frozen=True)
class IsolationCost:
    """Table 1 as data: one row per mechanism."""

    name: str
    startup_ms: float
    interaction_ms: float
    exec_overhead_cpu: float
    exec_overhead_io: float

    def apply(self, behavior: FunctionBehavior) -> FunctionBehavior:
        """Inflate a behaviour's segments by the execution overheads."""
        return behavior.scaled(cpu_factor=1.0 + self.exec_overhead_cpu,
                               io_factor=1.0 + self.exec_overhead_io)

    def function_latency_ms(self, behavior: FunctionBehavior) -> float:
        """Solo-run latency of a function under this mechanism."""
        return self.startup_ms + self.apply(behavior).solo_ms


SFI = IsolationCost("sfi", SFI_STARTUP_MS, SFI_INTERACTION_MS,
                    SFI_EXEC_OVERHEAD_CPU, SFI_EXEC_OVERHEAD_IO)
MPK = IsolationCost("mpk", MPK_STARTUP_MS, MPK_INTERACTION_MS,
                    MPK_EXEC_OVERHEAD_CPU, MPK_EXEC_OVERHEAD_IO)
NATIVE = IsolationCost("native", 0.0, 0.0, 0.0, 0.0)


class AccessMode(enum.Flag):
    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    READ_WRITE = READ | WRITE


class MpkDomain:
    """A process address space partitioned into protection-keyed arenas."""

    def __init__(self) -> None:
        self._arena_key: Dict[str, int] = {}
        self._arena_data: Dict[str, Dict[str, Any]] = {}
        #: thread name -> {key: AccessMode} (the PKRU register content)
        self._pkru: Dict[str, Dict[int, AccessMode]] = {}
        self._next_key = SHARED_KEY + 1

    # -- arena management ---------------------------------------------------
    def create_arena(self, arena: str, key: Optional[int] = None) -> int:
        """Allocate an arena under a (possibly fresh) protection key."""
        if arena in self._arena_key:
            raise IsolationFault(f"arena {arena!r} already exists")
        if key is None:
            if self._next_key >= NUM_PROTECTION_KEYS:
                raise IsolationFault("out of protection keys (16 available)")
            key = self._next_key
            self._next_key += 1
        if not (0 <= key < NUM_PROTECTION_KEYS):
            raise IsolationFault(f"invalid protection key {key}")
        self._arena_key[arena] = key
        self._arena_data[arena] = {}
        return key

    def key_of(self, arena: str) -> int:
        try:
            return self._arena_key[arena]
        except KeyError:
            raise IsolationFault(f"unknown arena {arena!r}") from None

    # -- thread rights (PKRU) --------------------------------------------------
    def register_thread(self, thread: str) -> None:
        """A new thread can touch only the shared key until granted more."""
        self._pkru.setdefault(thread, {SHARED_KEY: AccessMode.READ_WRITE})

    def grant(self, thread: str, key: int,
              mode: AccessMode = AccessMode.READ_WRITE) -> None:
        self.register_thread(thread)
        self._pkru[thread][key] = mode

    def revoke(self, thread: str, key: int) -> None:
        self.register_thread(thread)
        self._pkru[thread].pop(key, None)

    def _check(self, thread: str, arena: str, needed: AccessMode) -> None:
        key = self.key_of(arena)
        rights = self._pkru.get(thread, {}).get(key, AccessMode.NONE)
        if needed not in rights:
            raise IsolationFault(
                f"thread {thread!r} lacks {needed} on arena {arena!r} "
                f"(key {key})")

    # -- data access -------------------------------------------------------------
    def write(self, thread: str, arena: str, field: str, value: Any) -> None:
        self._check(thread, arena, AccessMode.WRITE)
        self._arena_data[arena][field] = value

    def read(self, thread: str, arena: str, field: str) -> Any:
        self._check(thread, arena, AccessMode.READ)
        try:
            return self._arena_data[arena][field]
        except KeyError:
            raise IsolationFault(
                f"field {field!r} not present in arena {arena!r}") from None


def private_arenas_for(domain: MpkDomain, threads: list[str]) -> Dict[str, str]:
    """Give each thread its own keyed arena (the Chiron-M setup).

    Returns thread -> arena-name.  Every thread keeps access to the shared
    key for orchestrator-mediated state transfer.
    """
    mapping: Dict[str, str] = {}
    for thread in threads:
        arena = f"arena-{thread}"
        key = domain.create_arena(arena)
        domain.register_thread(thread)
        domain.grant(thread, key)
        mapping[thread] = arena
    return mapping
