"""Latency statistics: CDFs, percentiles, distribution summaries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ReproError


def percentile(latencies_ms: Sequence[float], q: float) -> float:
    """The q-th percentile (q in [0, 100]) of a latency sample."""
    if not latencies_ms:
        raise ReproError("percentile of an empty sample")
    if not 0 <= q <= 100:
        raise ReproError(f"percentile q out of range: {q}")
    return float(np.percentile(np.asarray(latencies_ms, dtype=float), q))


def cdf(latencies_ms: Sequence[float]
        ) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted values, cumulative fraction in %).

    Matches Figure 15's axes (latency on x, CDF % on y).
    """
    if not latencies_ms:
        raise ReproError("cdf of an empty sample")
    values = np.sort(np.asarray(latencies_ms, dtype=float))
    fractions = np.arange(1, len(values) + 1) / len(values) * 100.0
    return values, fractions


@dataclass(frozen=True)
class LatencySummary:
    count: int
    mean_ms: float
    p50_ms: float
    p90_ms: float
    p99_ms: float
    min_ms: float
    max_ms: float


def summarize_latencies(latencies_ms: Sequence[float]) -> LatencySummary:
    """Distribution summary used by the experiment tables."""
    if not latencies_ms:
        raise ReproError("summary of an empty sample")
    arr = np.asarray(latencies_ms, dtype=float)
    return LatencySummary(
        count=len(arr),
        mean_ms=float(arr.mean()),
        p50_ms=percentile(latencies_ms, 50),
        p90_ms=percentile(latencies_ms, 90),
        p99_ms=percentile(latencies_ms, 99),
        min_ms=float(arr.min()),
        max_ms=float(arr.max()),
    )
