"""Latency statistics: CDFs, percentiles, distribution summaries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import EmptySampleError, ReproError


def _require_nonempty(latencies_ms: Sequence[float], what: str) -> None:
    # len() rather than truthiness: a numpy array raises an obscure
    # "ambiguous truth value" instead of the clear error we want, and a
    # non-empty array of zeros is falsy-looking but perfectly summarizable
    if len(latencies_ms) == 0:
        raise EmptySampleError(
            f"{what} of an empty latency sample — no requests completed "
            f"(all shed/failed?); guard the call or pass allow_empty=True "
            f"where supported")


def percentile(latencies_ms: Sequence[float], q: float) -> float:
    """The q-th percentile (q in [0, 100]) of a latency sample."""
    _require_nonempty(latencies_ms, "percentile")
    if not 0 <= q <= 100:
        raise ReproError(f"percentile q out of range: {q}")
    return float(np.percentile(np.asarray(latencies_ms, dtype=float), q))


def cdf(latencies_ms: Sequence[float]
        ) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted values, cumulative fraction in %).

    Matches Figure 15's axes (latency on x, CDF % on y).
    """
    _require_nonempty(latencies_ms, "cdf")
    values = np.sort(np.asarray(latencies_ms, dtype=float))
    fractions = np.arange(1, len(values) + 1) / len(values) * 100.0
    return values, fractions


@dataclass(frozen=True)
class LatencySummary:
    count: int
    mean_ms: float
    p50_ms: float
    p90_ms: float
    p99_ms: float
    min_ms: float
    max_ms: float


#: the summary of a sample with no completions (overload tests where every
#: request was shed): count 0, every statistic NaN
EMPTY_SUMMARY = LatencySummary(count=0, mean_ms=float("nan"),
                               p50_ms=float("nan"), p90_ms=float("nan"),
                               p99_ms=float("nan"), min_ms=float("nan"),
                               max_ms=float("nan"))


def summarize_latencies(latencies_ms: Sequence[float], *,
                        allow_empty: bool = False) -> LatencySummary:
    """Distribution summary used by the experiment tables.

    An empty sample raises :class:`~repro.errors.EmptySampleError` (a
    ``ValueError``) unless ``allow_empty`` is set, in which case the
    all-NaN :data:`EMPTY_SUMMARY` is returned — load tests under admission
    control can legitimately complete zero requests.
    """
    if allow_empty and len(latencies_ms) == 0:
        return EMPTY_SUMMARY
    _require_nonempty(latencies_ms, "summary")
    arr = np.asarray(latencies_ms, dtype=float)
    # one vectorized pass: a single percentile call sorts once for all
    # three quantiles (the per-call form re-sorted the sample each time)
    p50, p90, p99 = np.percentile(arr, (50.0, 90.0, 99.0))
    return LatencySummary(
        count=len(arr),
        mean_ms=float(arr.mean()),
        p50_ms=float(p50),
        p90_ms=float(p90),
        p99_ms=float(p99),
        min_ms=float(arr.min()),
        max_ms=float(arr.max()),
    )
