"""Maximum throughput per worker node (Figure 16's bottom panel).

A node (Table 2: 40 cores, 128 GB) hosts as many deployment instances as
its CPUs and memory allow; each instance serves requests back to back at
``1 / service_latency``.  Max RPS is therefore::

    instances = min(cores // cores_per_instance, mem // mem_per_instance)
    rps       = instances * 1000 / latency_ms

Chiron's advantage in the paper comes from *both* terms: lower latency and
a smaller per-instance footprint.  :func:`simulate_closed_loop` cross-checks
the capacity model by actually replaying back-to-back requests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.calibration import NODE_CORES, NODE_MEMORY_MB
from repro.errors import CapacityError
from repro.platforms.base import Platform
from repro.workflow.model import Workflow


@dataclass(frozen=True)
class ThroughputReport:
    platform: str
    #: fractional when one instance spans more than a node (e.g. one-to-one
    #: FINRA-100 needs 101 CPUs: each 40-core node contributes ~0.4 of an
    #: instance's capacity)
    instances_per_node: float
    latency_ms: float
    rps: float
    bound: str  # "cpu" | "memory" | "none"


def max_throughput_rps(platform: Platform, workflow: Workflow, *,
                       node_cores: float = NODE_CORES,
                       node_memory_mb: float = NODE_MEMORY_MB,
                       latency_ms: float | None = None) -> float:
    """Maximum requests/second one node sustains for this deployment."""
    return throughput_report(platform, workflow, node_cores=node_cores,
                             node_memory_mb=node_memory_mb,
                             latency_ms=latency_ms).rps


def throughput_report(platform: Platform, workflow: Workflow, *,
                      node_cores: float = NODE_CORES,
                      node_memory_mb: float = NODE_MEMORY_MB,
                      latency_ms: float | None = None) -> ThroughputReport:
    """Capacity-model throughput with the binding resource identified."""
    if node_cores <= 0 or node_memory_mb <= 0:
        raise CapacityError("node capacity must be positive")
    cores = max(platform.allocated_cores(workflow), 1)
    memory = max(platform.memory_mb(workflow), 1e-9)
    by_cpu = node_cores / cores
    by_mem = node_memory_mb / memory
    # whole instances when they fit; a fractional share of the (multi-node)
    # deployment's capacity otherwise
    instances = min(by_cpu, by_mem)
    if instances >= 1.0:
        by_cpu, by_mem = float(int(by_cpu)), float(int(by_mem))
        instances = min(by_cpu, by_mem)
    if latency_ms is None:
        latency_ms = platform.run(workflow).latency_ms
    rps = instances * 1000.0 / latency_ms
    bound = ("cpu" if by_cpu < by_mem
             else "memory" if by_mem < by_cpu else "none")
    return ThroughputReport(platform=platform.name,
                            instances_per_node=instances,
                            latency_ms=latency_ms, rps=rps, bound=bound)


def simulate_closed_loop(platform: Platform, workflow: Workflow, *,
                         requests: int = 20) -> float:
    """Measured RPS of one instance serving requests back to back.

    Cross-checks the capacity model's ``1000 / latency`` term: the value
    returned here times instances-per-node should approximate
    :func:`max_throughput_rps`.
    """
    if requests < 1:
        raise CapacityError("requests must be >= 1")
    return requests * 1000.0 / float(
        latency_samples(platform, workflow, requests=requests).sum())


def latency_samples(platform: Platform, workflow: Workflow, *,
                    requests: int, base_seed: int = 7000) -> np.ndarray:
    """Latency vector of ``requests`` seeded runs.

    Metrics pipelines consume this as one contiguous array — percentiles,
    sums and deadline counts reduce vectorized instead of walking Python
    lists.
    """
    if requests < 1:
        raise CapacityError("requests must be >= 1")
    return np.fromiter(
        (platform.run(workflow, seed=base_seed + r).latency_ms
         for r in range(requests)),
        dtype=float, count=requests)
