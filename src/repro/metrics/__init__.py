"""Evaluation metrics: dollar cost, throughput capacity, latency statistics.

* :mod:`~repro.metrics.cost` — the Figure 19 pricing model (GB-second +
  GHz-second + ASF state transitions);
* :mod:`~repro.metrics.throughput` — per-node maximum requests/second from
  the CPU/memory capacity model plus a closed-loop simulated load check
  (Figure 16);
* :mod:`~repro.metrics.stats` — latency CDFs, percentiles and SLO-violation
  helpers (Figures 14/15).
"""

from repro.metrics.cost import CostModel, RequestCost
from repro.metrics.stats import cdf, percentile, summarize_latencies
from repro.metrics.throughput import max_throughput_rps, throughput_report

__all__ = [
    "CostModel",
    "RequestCost",
    "cdf",
    "max_throughput_rps",
    "percentile",
    "summarize_latencies",
    "throughput_report",
]
