"""Dollar-cost model (Figure 19, §6.3 "Cost efficiency").

Pricing follows the Google Cloud Functions rates the paper quotes:
$2.5e-6 per GB-second of memory and $1.0e-5 per GHz-second of CPU, with CPU
and memory charged independently.  AWS Step Functions additionally bills
every state transition.  A deployment is billed for (allocated memory x
busy time) and (allocated CPU x clock x busy time) per request.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.calibration import (
    ASF_PRICE_PER_STATE_TRANSITION,
    CPU_CLOCK_GHZ,
    PRICE_PER_GB_SECOND,
    PRICE_PER_GHZ_SECOND,
)
from repro.errors import ReproError
from repro.platforms.base import Platform
from repro.workflow.model import Workflow


@dataclass(frozen=True)
class RequestCost:
    """Cost breakdown of one workflow request (USD)."""

    memory_usd: float
    cpu_usd: float
    transitions_usd: float

    @property
    def total_usd(self) -> float:
        return self.memory_usd + self.cpu_usd + self.transitions_usd

    def per_million(self) -> float:
        """USD per one million requests (Figure 19's unit)."""
        return self.total_usd * 1e6


class CostModel:
    """Prices platform deployments per request."""

    def __init__(self, *,
                 price_gb_second: float = PRICE_PER_GB_SECOND,
                 price_ghz_second: float = PRICE_PER_GHZ_SECOND,
                 price_transition: float = ASF_PRICE_PER_STATE_TRANSITION,
                 clock_ghz: float = CPU_CLOCK_GHZ) -> None:
        if min(price_gb_second, price_ghz_second, price_transition,
               clock_ghz) < 0:
            raise ReproError("prices must be non-negative")
        self.price_gb_second = price_gb_second
        self.price_ghz_second = price_ghz_second
        self.price_transition = price_transition
        self.clock_ghz = clock_ghz

    def request_cost(self, platform: Platform, workflow: Workflow, *,
                     latency_ms: float | None = None) -> RequestCost:
        """Bill one request.

        The deployment's full allocation (memory + CPUs) is charged for the
        request's end-to-end duration — the paper's model, which is what
        makes over-provisioned deployments expensive even when idle within
        a request.
        """
        if latency_ms is None:
            latency_ms = platform.run(workflow).latency_ms
        if latency_ms < 0:
            raise ReproError(f"negative latency {latency_ms}")
        seconds = latency_ms / 1e3
        memory_gb = platform.memory_mb(workflow) / 1024.0
        cores = platform.allocated_cores(workflow)
        return RequestCost(
            memory_usd=memory_gb * seconds * self.price_gb_second,
            cpu_usd=cores * self.clock_ghz * seconds * self.price_ghz_second,
            transitions_usd=(platform.state_transitions(workflow)
                             * self.price_transition),
        )
