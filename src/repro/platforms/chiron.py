"""The Chiron platform: executes a PGP deployment plan (§3, §5).

One sandbox per wrap, sized to the plan's cores.  Per stage, wrap 1's
orchestrator triggers sibling wraps (paying the invocation overhead of
Eq. 2), each wrap runs its thread groups in its resident orchestrator
process and forks its process groups (Eq. 4's costs), and intra-wrap results
flow back over pipes (Eq. 3's IPC).  Pool plans dispatch functions to each
wrap's pre-forked worker pool instead, starting long-running functions first
(Figure 15's skew mitigation).
"""

from __future__ import annotations

from typing import Optional

from repro.calibration import RuntimeCalibration
from repro.core.wrap import DeploymentPlan, StageAssignment, Wrap
from repro.errors import DeploymentError
from repro.faults.recovery import run_unit
from repro.overload.deadline import check_deadline
from repro.platforms.base import Platform, RequestResult, on_complete
from repro.runtime.memory import SandboxFootprint
from repro.runtime.network import Gateway, ipc_collect
from repro.runtime.osproc import fork_children
from repro.runtime.sandbox import Sandbox
from repro.simcore import Environment
from repro.simcore.monitor import TraceRecorder
from repro.workflow.model import Workflow


class ChironPlatform(Platform):
    """m-to-n execution of a :class:`DeploymentPlan`."""

    def __init__(self, plan: DeploymentPlan,
                 cal: Optional[RuntimeCalibration] = None, *,
                 name: str = "chiron",
                 longest_first: bool = True) -> None:
        super().__init__(cal)
        self.plan = plan
        self.name = name
        self.longest_first = longest_first

    # -- execution ------------------------------------------------------------
    def _run_wrap_part(self, env: Environment, part_index: int, wrap: Wrap,
                       sandboxes, sa: StageAssignment, workflow: Workflow,
                       gateway: Gateway, trace: TraceRecorder,
                       result: RequestResult, cold: bool = False):
        """Recovery driver: m-to-n retries at *wrap* granularity.

        A crash loses exactly one wrap's share of the stage — every function
        packed into the wrap re-runs, none of its siblings do — so blast
        radius is an emergent property of the deployment plan.
        """
        fns = [workflow.function(n) for n in sa.function_names]

        def make_attempt():
            return self._attempt_wrap_part(env, part_index,
                                           sandboxes[wrap.name], sa,
                                           workflow, gateway, trace, result,
                                           cold)

        def on_restart(mechanism):
            if mechanism in ("sandbox.crash", "sandbox.reclaim"):
                old = sandboxes[wrap.name]
                if mechanism == "sandbox.reclaim":
                    old.reclaim()
                else:
                    old.crash()
                fresh = Sandbox(env, name=old.name, cal=self.cal,
                                trace=trace, cores=self.plan.cores_for(wrap))
                if self.plan.pool_workers > 0:
                    fresh.init_pool(self.plan.pool_workers)
                # a reclaimed sandbox always re-boots: the lifecycle tier
                # (snapshot/pool/cold) decides what that boot costs
                if (mechanism == "sandbox.reclaim"
                        or env.faults.policy.reboot_cold):
                    yield from fresh.boot(cold=True)
                else:
                    fresh.booted = True
                sandboxes[wrap.name] = fresh

        yield from run_unit(
            env, make_attempt, entity=f"{wrap.name}-s{sa.stage_index}",
            n_functions=len(fns),
            unit_work_ms=sum(f.behavior.solo_ms for f in fns),
            expected_ms=max(f.behavior.solo_ms for f in fns),
            on_restart=on_restart)

    def _attempt_wrap_part(self, env: Environment, part_index: int,
                           sandbox: Sandbox, sa: StageAssignment,
                           workflow: Workflow, gateway: Gateway,
                           trace: TraceRecorder, result: RequestResult,
                           cold: bool = False):
        """One wrap's share of one stage (Eq. 3 mechanics)."""
        if env.slots_armed:
            check_deadline(env, entity=sandbox.name,
                           completed_stages=sa.stage_index)
        if cold and not sandbox.booted:
            # lazy wrap boot: sibling wraps of a stage boot concurrently, so
            # an m-to-n deployment pays ~one cold start per stage *wave*
            # rather than per function
            yield from sandbox.boot(cold=True)
        if part_index > 0:
            # Eq. 2: the k-th wrap is invoked after (k-1) earlier async
            # submissions plus one RPC through the gateway.
            yield env.timeout(part_index * self.cal.t_inv_ms)
            yield from gateway.invoke(entity=sandbox.name)
        fns_of = lambda p: [workflow.function(n) for n in p.functions]
        starts = {n: env.now for n in sa.function_names}
        pending = []
        if self.plan.pool_workers > 0:
            pool = sandbox.pool
            assert pool is not None
            flat = [workflow.function(n) for n in sa.function_names]
            events = yield from pool.map(sandbox.main_process.main_thread,
                                         flat,
                                         longest_first=self.longest_first)
            ordered = sorted(flat, key=lambda f: f.behavior.solo_ms,
                             reverse=True) if self.longest_first else flat
            for fn, ev in zip(ordered, events):
                on_complete(ev, lambda n=fn.name: result.function_spans
                            .__setitem__(n, (starts[n], env.now)))
                pending.append(ev)
            yield env.all_of(pending)
            return

        # Fork the process groups FIRST (Figure 9's generated orchestrator
        # does Process(P1), Process(P2), ... before cloning threads): the
        # forks are cheap serialized parent work, and doing them before the
        # thread fan-out keeps the orchestrator's main thread from being
        # starved of the GIL by its own function threads.
        forked_groups = sa.forked_processes
        if forked_groups:
            forked = yield from fork_children(
                env, sandbox.main_process,
                [fns_of(g) for g in forked_groups],
                cal=self.cal, cpu=sandbox.cpu, trace=trace,
                name_prefix=f"{sandbox.name}-s{sa.stage_index}")
            for group, ev in zip(forked_groups, forked.done_events):
                on_complete(ev, lambda names=group.functions: [
                    result.function_spans.__setitem__(
                        n, (starts[n], env.now)) for n in names])
                pending.append(ev)
        # thread groups ride in the resident orchestrator process
        for group in sa.thread_groups:
            events = yield from sandbox.main_process.spawn_function_threads(
                fns_of(group))
            for name, ev in zip(group.functions, events):
                on_complete(ev, lambda n=name: result.function_spans
                            .__setitem__(n, (starts[n], env.now)))
                pending.append(ev)
        if pending:
            yield env.all_of(pending)
        data_mb = sum(workflow.function(n).behavior.data_out_mb
                      for n in sa.function_names)
        yield from ipc_collect(env, n_processes=len(sa.processes),
                               data_mb=data_mb, cal=self.cal, trace=trace,
                               entity=f"{sandbox.name}-ipc-s{sa.stage_index}")

    def _execute(self, env: Environment, workflow: Workflow,
                 trace: TraceRecorder, result: RequestResult, cold: bool):
        self.plan.validate(workflow)
        gateway = Gateway(env, self.cal, trace=trace)
        sandboxes = {w.name: Sandbox(env, name=w.name, cal=self.cal,
                                     trace=trace,
                                     cores=self.plan.cores_for(w))
                     for w in self.plan.wraps}
        if self.plan.pool_workers > 0:
            for sb in sandboxes.values():
                sb.init_pool(self.plan.pool_workers)
        ha = env.ha if env.slots_armed else None
        start_stage = 0
        if ha is not None:
            # replay-from-last-stage: a replayed request resumes at the
            # first stage the completion manifest does not cover
            start_stage = yield from ha.restore()
        for stage_idx in range(start_stage, len(workflow.stages)):
            if env.slots_armed:
                check_deadline(env, entity="request",
                               completed_stages=stage_idx)
            parts = self.plan.stage_wraps(stage_idx)
            if not parts:
                raise DeploymentError(f"plan covers no wrap for stage "
                                      f"{stage_idx}")
            handle = (trace.begin(f"stage.{stage_idx}", entity="request",
                                  wraps=len(parts))
                      if trace.detail else None)
            events = [env.process(self._run_wrap_part(
                env, k, wrap, sandboxes, sa, workflow, gateway,
                trace, result, cold))
                for k, (wrap, sa) in enumerate(parts)]
            yield env.all_of(events)
            if handle is not None:
                trace.end(handle)
            if ha is not None:
                yield from ha.commit_stage(stage_idx)
            result.stage_ends_ms.append(env.now)

    # -- accounting ------------------------------------------------------------
    def footprints(self, workflow: Workflow) -> list[SandboxFootprint]:
        out = []
        for wrap in self.plan.wraps:
            n_functions = len(wrap.function_names)
            peak_forked = max((len(sa.forked_processes) for sa in wrap.stages),
                              default=0)
            peak_threads = max(
                (sum(len(g.functions) for g in sa.thread_groups)
                 for sa in wrap.stages), default=0)
            out.append(SandboxFootprint(
                functions=n_functions,
                processes=1 + peak_forked,
                threads=peak_threads,
                pool_workers=self.plan.pool_workers))
        return out

    def allocated_cores(self, workflow: Workflow) -> int:
        return self.plan.total_cores

    def per_sandbox_cores(self, workflow: Workflow) -> list[float]:
        return [float(self.plan.cores_for(w)) for w in self.plan.wraps]
