"""AWS Step Functions + Lambda: the commercial one-to-one baseline.

Calibrated to §2.2 Observation 1: ~150 ms to schedule a state, at most ~10
concurrent dispatches, serially issued parallel branches, and S3 for every
intermediate exchange.  Billing adds a per-state-transition fee (Figure 19).
"""

from __future__ import annotations

from typing import Optional

from repro.calibration import RuntimeCalibration
from repro.faults.recovery import run_unit
from repro.overload.deadline import check_deadline
from repro.platforms.base import Platform, RequestResult
from repro.runtime.memory import SandboxFootprint
from repro.runtime.network import ASFDispatcher
from repro.runtime.sandbox import Sandbox
from repro.runtime.storage import StorageService
from repro.runtime.thread import SimThread
from repro.simcore import Environment
from repro.simcore.monitor import TraceRecorder
from repro.workflow.model import FunctionSpec, Workflow


class ASFPlatform(Platform):
    """Amazon Step Functions orchestrating per-function Lambda sandboxes."""

    name = "asf"

    def _attempt_branch(self, env: Environment, dispatcher: ASFDispatcher,
                        sandbox: Sandbox, fn: FunctionSpec, index: int,
                        trace: TraceRecorder, result: RequestResult,
                        cold: bool = False):
        if env.slots_armed:
            check_deadline(env, entity=fn.name)
        start = env.now
        yield from dispatcher.dispatch(index, entity=fn.name)
        if cold and not sandbox.booted:
            yield from sandbox.boot(cold=True)  # cascading Lambda cold start
        thread = SimThread(env, name=fn.name, cpu=sandbox.cpu,
                           gil=sandbox.main_process.gil, cal=self.cal,
                           trace=trace)
        yield env.process(thread.run_behavior(fn.behavior))
        result.function_spans[fn.name] = (start, env.now)

    def _run_branch(self, env: Environment, dispatcher: ASFDispatcher,
                    sandboxes, fn: FunctionSpec, index: int,
                    trace: TraceRecorder, result: RequestResult,
                    cold: bool = False):
        """Recovery driver: Step Functions retries one Lambda at a time."""
        def make_attempt():
            return self._attempt_branch(env, dispatcher, sandboxes[fn.name],
                                        fn, index, trace, result, cold)

        def on_restart(mechanism):
            if mechanism in ("sandbox.crash", "sandbox.reclaim"):
                old = sandboxes[fn.name]
                if mechanism == "sandbox.reclaim":
                    old.reclaim()
                else:
                    old.crash()
                fresh = Sandbox(env, name=old.name, cores=1, cal=self.cal,
                                trace=trace)
                # a reclaimed sandbox always re-boots: the lifecycle tier
                # (snapshot/pool/cold) decides what that boot costs
                if (mechanism == "sandbox.reclaim"
                        or env.faults.policy.reboot_cold):
                    yield from fresh.boot(cold=True)
                else:
                    fresh.booted = True
                sandboxes[fn.name] = fresh

        yield from run_unit(env, make_attempt, entity=fn.name, n_functions=1,
                            unit_work_ms=fn.behavior.solo_ms,
                            expected_ms=fn.behavior.solo_ms,
                            on_restart=on_restart)

    def _execute(self, env: Environment, workflow: Workflow,
                 trace: TraceRecorder, result: RequestResult, cold: bool):
        dispatcher = ASFDispatcher(env, trace=trace)
        storage = StorageService.s3(env, trace=trace)
        sandboxes = {fn.name: Sandbox(env, name=f"lambda-{fn.name}", cores=1,
                                      cal=self.cal, trace=trace)
                     for fn in workflow.functions}
        for stage_idx, stage in enumerate(workflow.stages):
            if env.slots_armed:
                check_deadline(env, entity="request",
                               completed_stages=stage_idx)
            events = [env.process(self._run_branch(
                env, dispatcher, sandboxes, fn, i, trace, result,
                cold)) for i, fn in enumerate(stage)]
            yield env.all_of(events)
            result.stage_ends_ms.append(env.now)
            if stage_idx + 1 < len(workflow.stages):
                size_mb = sum(fn.behavior.data_out_mb for fn in stage)
                entity = f"stage-{stage_idx}"
                yield from run_unit(
                    env, lambda: storage.exchange(size_mb, entity=entity),
                    entity=entity)

    # -- accounting ------------------------------------------------------------
    def footprints(self, workflow: Workflow) -> list[SandboxFootprint]:
        return [SandboxFootprint(functions=1, processes=1)
                for _ in workflow.functions]

    def allocated_cores(self, workflow: Workflow) -> int:
        return workflow.num_functions

    def state_transitions(self, workflow: Workflow) -> int:
        # every function entry/exit is a billable transition, plus the
        # parallel-state enter/exit per stage
        return 2 * workflow.num_functions + 2 * len(workflow.stages)
