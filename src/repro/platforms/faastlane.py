"""Faastlane and its evaluation variants (§2.2, §6).

Faastlane (ATC '21) deploys a whole workflow into one sandbox; sequential
functions run as threads of the resident process (minimal interaction
latency), parallel functions fork one process each (true parallelism).

Variants used throughout the paper's figures:

* ``FaastlanePlatform(variant="T")`` — *Faastlane-T*: threads only, even for
  parallel stages (pseudo-parallelism under the GIL);
* ``variant="plus"`` — *Faastlane+*: a fixed "m-to-n" of 5 function
  processes per sandbox;
* ``variant="M"`` — *Faastlane-M*: thread execution guarded by Intel MPK for
  sequential functions (Table 1 overheads), processes for parallel ones;
* ``variant="P"`` — *Faastlane-P*: a warm process pool sized to the maximum
  parallelism (true parallelism, no fork cost, heavy resident memory).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.calibration import RuntimeCalibration
from repro.errors import DeploymentError
from repro.faults.recovery import run_unit
from repro.overload.deadline import check_deadline
from repro.platforms.base import Platform, RequestResult, on_complete
from repro.runtime.memory import SandboxFootprint
from repro.runtime.network import Gateway, ipc_collect
from repro.runtime.osproc import fork_children
from repro.runtime.sandbox import Sandbox
from repro.simcore import Environment
from repro.simcore.monitor import TraceRecorder
from repro.workflow.model import FunctionSpec, Stage, Workflow

#: Faastlane+ packs this many function processes per sandbox (§2.2).
PLUS_PROCESSES_PER_SANDBOX = 5

_VARIANTS = ("native", "T", "plus", "M", "P")


class FaastlanePlatform(Platform):
    """The many-to-one state of the art, with the paper's four variants."""

    def __init__(self, cal: Optional[RuntimeCalibration] = None, *,
                 variant: str = "native") -> None:
        super().__init__(cal)
        if variant not in _VARIANTS:
            raise DeploymentError(f"unknown Faastlane variant {variant!r}; "
                                  f"expected one of {_VARIANTS}")
        self.variant = variant
        suffix = {"native": "", "T": "-t", "plus": "+", "M": "-m",
                  "P": "-p"}[variant]
        self.name = f"faastlane{suffix}"
        #: calibration used for orchestrator-thread execution; MPK variant
        #: pays Table 1 overheads there while forked processes stay native.
        self._thread_cal = (RuntimeCalibration.mpk() if variant == "M"
                            else self.cal)

    # -- stage runners -----------------------------------------------------
    def _run_stage_as_threads(self, env: Environment, sandbox: Sandbox,
                              stage: Stage, trace: TraceRecorder,
                              result: RequestResult, cal: RuntimeCalibration):
        proc = sandbox.main_process
        saved_cal, proc.cal = proc.cal, cal
        saved_thread_cal = proc.main_thread.cal
        proc.main_thread.cal = cal
        starts = {fn.name: env.now for fn in stage}
        events = yield from proc.spawn_function_threads(list(stage))
        proc.cal = saved_cal
        proc.main_thread.cal = saved_thread_cal
        for fn, ev in zip(stage, events):
            on_complete(ev, lambda n=fn.name: result.function_spans
                        .__setitem__(n, (starts[n], env.now)))
        yield env.all_of(events)

    def _run_stage_as_processes(self, env: Environment, sandbox: Sandbox,
                                stage_idx: int, functions: list[FunctionSpec],
                                trace: TraceRecorder, result: RequestResult):
        starts = {fn.name: env.now for fn in functions}
        forked = yield from fork_children(
            env, sandbox.main_process, [[fn] for fn in functions],
            cal=self.cal, cpu=sandbox.cpu, trace=trace,
            name_prefix=f"{self.name}-s{stage_idx}")
        for fn, ev in zip(functions, forked.done_events):
            on_complete(ev, lambda n=fn.name: result.function_spans
                        .__setitem__(n, (starts[n], env.now)))
        yield env.all_of(forked.done_events)
        data_mb = sum(fn.behavior.data_out_mb for fn in functions)
        yield from ipc_collect(env, n_processes=len(functions),
                               data_mb=data_mb, cal=self.cal, trace=trace,
                               entity=f"ipc-s{stage_idx}")

    def _run_stage_in_pool(self, env: Environment, sandbox: Sandbox,
                           stage: Stage, trace: TraceRecorder,
                           result: RequestResult):
        pool = sandbox.pool
        assert pool is not None
        starts = {fn.name: env.now for fn in stage}
        events = yield from pool.map(sandbox.main_process.main_thread,
                                     list(stage))
        for fn, ev in zip(stage, events):
            on_complete(ev, lambda n=fn.name: result.function_spans
                        .__setitem__(n, (starts[n], env.now)))
        yield env.all_of(events)

    # -- per-variant request drivers --------------------------------------------
    def _execute(self, env: Environment, workflow: Workflow,
                 trace: TraceRecorder, result: RequestResult, cold: bool):
        # Many-to-1 recovery: every variant re-runs the *whole workflow* on
        # any fault — the entire request shares sandbox state, so nothing
        # smaller can be retried in isolation.
        state = {"force_cold": cold}

        def make_attempt():
            return self._attempt_workflow(env, workflow, trace, result,
                                          state["force_cold"])

        def on_restart(mechanism):
            # a reclaimed sandbox always re-boots (the lifecycle tier prices
            # the boot); a crashed one re-boots cold only if the policy says
            if mechanism == "sandbox.reclaim" or (
                    mechanism == "sandbox.crash"
                    and env.faults.policy.reboot_cold):
                state["force_cold"] = True

        yield from run_unit(env, make_attempt, entity=self.name,
                            n_functions=workflow.num_functions,
                            unit_work_ms=workflow.total_work_ms,
                            expected_ms=workflow.critical_path_ms,
                            on_restart=on_restart)

    def _attempt_workflow(self, env: Environment, workflow: Workflow,
                          trace: TraceRecorder, result: RequestResult,
                          cold: bool):
        result.stage_ends_ms.clear()
        if self.variant == "plus":
            yield from self._execute_plus(env, workflow, trace, result, cold)
            return
        sandbox = Sandbox(env, name=self.name, cal=self.cal, trace=trace,
                          cores=self.allocated_cores(workflow))
        if cold:
            yield from sandbox.boot(cold=True)
        if self.variant == "P":
            sandbox.init_pool(workflow.max_parallelism)
        for stage_idx, stage in enumerate(workflow.stages):
            if env.slots_armed:
                check_deadline(env, entity=self.name,
                               completed_stages=stage_idx)
            if self.variant == "P":
                yield from self._run_stage_in_pool(env, sandbox, stage, trace,
                                                   result)
            elif self.variant == "T":
                yield from self._run_stage_as_threads(
                    env, sandbox, stage, trace, result, self._thread_cal)
            elif len(stage) == 1:
                # sequential function: a thread of the resident process
                yield from self._run_stage_as_threads(
                    env, sandbox, stage, trace, result, self._thread_cal)
            else:
                yield from self._run_stage_as_processes(
                    env, sandbox, stage_idx, list(stage), trace, result)
            result.stage_ends_ms.append(env.now)

    def _execute_plus(self, env: Environment, workflow: Workflow,
                      trace: TraceRecorder, result: RequestResult,
                      cold: bool):
        """Faastlane+: 5 function processes per sandbox, RPC across them."""
        n_sandboxes = self._plus_sandboxes(workflow)
        cores_each = min(PLUS_PROCESSES_PER_SANDBOX, workflow.max_parallelism)
        sandboxes = [Sandbox(env, name=f"{self.name}-{k}", cal=self.cal,
                             trace=trace, cores=cores_each)
                     for k in range(n_sandboxes)]
        gateway = Gateway(env, self.cal, trace=trace)
        if cold:
            yield env.all_of([env.process(sb.boot(cold=True))
                              for sb in sandboxes])

        def run_chunk(k: int, stage_idx: int, chunk: list[FunctionSpec]):
            if k > 0:
                yield env.timeout(k * self.cal.t_inv_ms)
                yield from gateway.invoke(entity=f"{self.name}-{k}")
            yield from self._run_stage_as_processes(
                env, sandboxes[k], stage_idx, chunk, trace, result)

        for stage_idx, stage in enumerate(workflow.stages):
            if env.slots_armed:
                check_deadline(env, entity=self.name,
                               completed_stages=stage_idx)
            if len(stage) == 1:
                yield from self._run_stage_as_threads(
                    env, sandboxes[0], stage, trace, result, self._thread_cal)
            else:
                fns = list(stage)
                chunks = [fns[k * PLUS_PROCESSES_PER_SANDBOX:
                              (k + 1) * PLUS_PROCESSES_PER_SANDBOX]
                          for k in range(n_sandboxes)]
                events = [env.process(run_chunk(k, stage_idx, chunk))
                          for k, chunk in enumerate(chunks) if chunk]
                yield env.all_of(events)
            result.stage_ends_ms.append(env.now)

    # -- accounting ------------------------------------------------------------
    @staticmethod
    def _plus_sandboxes(workflow: Workflow) -> int:
        return max(1, math.ceil(workflow.max_parallelism
                                / PLUS_PROCESSES_PER_SANDBOX))

    def footprints(self, workflow: Workflow) -> list[SandboxFootprint]:
        m = workflow.max_parallelism
        n = workflow.num_functions
        if self.variant == "T":
            return [SandboxFootprint(functions=n, processes=1, threads=m)]
        if self.variant == "P":
            return [SandboxFootprint(functions=n, processes=1,
                                     pool_workers=m)]
        if self.variant == "plus":
            k = self._plus_sandboxes(workflow)
            per = math.ceil(n / k)
            return [SandboxFootprint(
                functions=min(per, n - i * per),
                processes=1 + min(PLUS_PROCESSES_PER_SANDBOX, m))
                for i in range(k)]
        return [SandboxFootprint(functions=n, processes=1 + m)]

    def allocated_cores(self, workflow: Workflow) -> int:
        if self.variant == "T":
            return 1  # pseudo-parallel threads never use more than one core
        if self.variant == "plus":
            return self._plus_sandboxes(workflow) * min(
                PLUS_PROCESSES_PER_SANDBOX, workflow.max_parallelism)
        return workflow.max_parallelism
