"""SAND: application-level sandboxing, one process per function (§6/§8).

The whole workflow shares one sandbox; every function — sequential or
parallel — executes in its own forked process (SAND "executes each function
in a separate process").  Uniform allocation gives the sandbox one CPU per
unit of maximum parallelism.
"""

from __future__ import annotations

from repro.faults.recovery import run_unit
from repro.overload.deadline import check_deadline
from repro.platforms.base import Platform, RequestResult, on_complete
from repro.runtime.memory import SandboxFootprint
from repro.runtime.network import ipc_collect
from repro.runtime.osproc import fork_children
from repro.runtime.sandbox import Sandbox
from repro.simcore import Environment
from repro.simcore.monitor import TraceRecorder
from repro.workflow.model import Workflow


class SANDPlatform(Platform):
    """Many-to-one with process-per-function execution."""

    name = "sand"

    def _execute(self, env: Environment, workflow: Workflow,
                 trace: TraceRecorder, result: RequestResult, cold: bool):
        # Many-to-1 recovery: the whole workflow is one retry unit — any
        # fault re-runs everything (the maximal blast radius).
        state = {"force_cold": cold}

        def make_attempt():
            return self._attempt_workflow(env, workflow, trace, result,
                                          state["force_cold"])

        def on_restart(mechanism):
            # a reclaimed sandbox always re-boots (the lifecycle tier prices
            # the boot); a crashed one re-boots cold only if the policy says
            if mechanism == "sandbox.reclaim" or (
                    mechanism == "sandbox.crash"
                    and env.faults.policy.reboot_cold):
                state["force_cold"] = True

        yield from run_unit(env, make_attempt, entity=self.name,
                            n_functions=workflow.num_functions,
                            unit_work_ms=workflow.total_work_ms,
                            expected_ms=workflow.critical_path_ms,
                            on_restart=on_restart)

    def _attempt_workflow(self, env: Environment, workflow: Workflow,
                          trace: TraceRecorder, result: RequestResult,
                          cold: bool):
        result.stage_ends_ms.clear()
        sandbox = Sandbox(env, name="sand", cal=self.cal, trace=trace,
                          cores=self.allocated_cores(workflow))
        if cold:
            yield from sandbox.boot(cold=True)
        for stage_idx, stage in enumerate(workflow.stages):
            if env.slots_armed:
                check_deadline(env, entity=self.name,
                               completed_stages=stage_idx)
            starts = {fn.name: env.now for fn in stage}
            groups = [[fn] for fn in stage]
            forked = yield from fork_children(
                env, sandbox.main_process, groups, cal=self.cal,
                cpu=sandbox.cpu, trace=trace,
                name_prefix=f"sand-s{stage_idx}")
            for fn, ev in zip(stage, forked.done_events):
                on_complete(ev, lambda name=fn.name: result.function_spans
                            .__setitem__(name, (starts[name], env.now)))
            yield env.all_of(forked.done_events)
            data_mb = sum(fn.behavior.data_out_mb for fn in stage)
            yield from ipc_collect(env, n_processes=len(groups),
                                   data_mb=data_mb, cal=self.cal,
                                   trace=trace, entity=f"ipc-s{stage_idx}")
            result.stage_ends_ms.append(env.now)

    # -- accounting ------------------------------------------------------------
    def footprints(self, workflow: Workflow) -> list[SandboxFootprint]:
        return [SandboxFootprint(functions=workflow.num_functions,
                                 processes=1 + workflow.max_parallelism)]

    def allocated_cores(self, workflow: Workflow) -> int:
        return workflow.max_parallelism
