"""Build any evaluated platform by name.

Chiron variants need a PGP plan, which needs an SLO.  The paper sets the SLO
to the Faastlane average latency plus 10 ms (§6.2); :func:`build_platform`
computes that automatically when ``slo_ms`` is not given.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.calibration import RuntimeCalibration
from repro.core.pgp import PGPOptions, PGPScheduler
from repro.core.predictor import LatencyPredictor, PredictionCache
from repro.core.profiler import Profiler
from repro.core.slo import SloPolicy
from repro.errors import DeploymentError
from repro.platforms.asf import ASFPlatform
from repro.platforms.base import Platform
from repro.platforms.chiron import ChironPlatform
from repro.platforms.faastlane import FaastlanePlatform
from repro.platforms.openfaas import OpenFaaSPlatform
from repro.platforms.sand import SANDPlatform
from repro.workflow.model import Workflow

#: conservatism PGP plans with everywhere in the evaluation
_CONSERVATISM = 1.15

#: one process-wide cache behind every registry-built Chiron predictor:
#: figure sweeps and the cluster's load/saturation loops rebuild platforms
#: for the same workflows over and over, and content-addressed keys (which
#: include the calibration id) make sharing safe across variants.
_SHARED_CACHE = PredictionCache()


def default_slo_ms(workflow: Workflow,
                   cal: Optional[RuntimeCalibration] = None) -> float:
    """The paper's SLO convention: Faastlane average latency + 10 ms."""
    baseline = FaastlanePlatform(cal).average_latency_ms(workflow)
    return SloPolicy.from_baseline(baseline).slo_ms


def _chiron(workflow: Workflow, slo_ms: float,
            cal: RuntimeCalibration, *, name: str,
            options: Optional[PGPOptions] = None,
            pool: bool = False) -> ChironPlatform:
    profiler = Profiler()
    profiles = profiler.profile_workflow(workflow)
    profiled = Profiler.profiled_workflow(workflow, profiles)
    predictor = LatencyPredictor(cal, conservatism=_CONSERVATISM,
                                 cache=_SHARED_CACHE)
    scheduler = PGPScheduler(predictor, options=options)
    if pool:
        plan = scheduler.schedule_pool(profiled, slo_ms)
    else:
        plan = scheduler.schedule(profiled, slo_ms)
        # non-uniform allocation: share CPUs between processes while the
        # SLO holds (Obs. 4; Figure 17's Chiron-M savings rely on this)
        plan = scheduler.trim_cores(profiled, plan, slo_ms)
    return ChironPlatform(plan, cal, name=name)


def build_platform(name: str, workflow: Workflow, *,
                   slo_ms: Optional[float] = None,
                   cal: Optional[RuntimeCalibration] = None) -> Platform:
    """Instantiate a platform by its figure label.

    Known names: ``asf``, ``openfaas``, ``sand``, ``faastlane``,
    ``faastlane-t``, ``faastlane+``, ``faastlane-m``, ``faastlane-p``,
    ``chiron``, ``chiron-m``, ``chiron-p``.
    """
    cal = cal or RuntimeCalibration.native()
    simple: Dict[str, Callable[[], Platform]] = {
        "asf": lambda: ASFPlatform(cal),
        "openfaas": lambda: OpenFaaSPlatform(cal),
        "sand": lambda: SANDPlatform(cal),
        "faastlane": lambda: FaastlanePlatform(cal),
        "faastlane-t": lambda: FaastlanePlatform(cal, variant="T"),
        "faastlane+": lambda: FaastlanePlatform(cal, variant="plus"),
        "faastlane-m": lambda: FaastlanePlatform(cal, variant="M"),
        "faastlane-p": lambda: FaastlanePlatform(cal, variant="P"),
    }
    if name in simple:
        return simple[name]()
    if name not in ("chiron", "chiron-m", "chiron-p"):
        raise DeploymentError(f"unknown platform {name!r}")
    if slo_ms is None:
        slo_ms = default_slo_ms(workflow, cal)
    if name == "chiron":
        return _chiron(workflow, slo_ms, cal, name=name)
    if name == "chiron-m":
        # MPK-guarded threads for sequential functions only; every parallel
        # function forks its own process (§4 "for a fair comparison").
        return _chiron(
            workflow, slo_ms, RuntimeCalibration.mpk(), name=name,
            options=PGPOptions(orchestrator_threads="sequential-only",
                               max_threads_per_process=1))
    return _chiron(workflow, slo_ms, cal, name=name, pool=True)


PLATFORM_BUILDERS = ("asf", "openfaas", "sand", "faastlane", "faastlane-t",
                     "faastlane+", "faastlane-m", "faastlane-p", "chiron",
                     "chiron-m", "chiron-p")
