"""Serverless platforms: the systems compared in the paper's evaluation.

Every platform executes a :class:`~repro.workflow.Workflow` on the simulated
runtime substrate and reports end-to-end latency, per-function spans, and
static resource accounting:

======================  =============================================  =======
platform                deployment model                               paper
======================  =============================================  =======
:class:`ASFPlatform`    one-to-one, remote scheduler + S3              §2.2/6
:class:`OpenFaaSPlatform` one-to-one, local gateway + MinIO            §2.2/6
:class:`SANDPlatform`   many-to-one, one process per function          §6
:class:`FaastlanePlatform` many-to-one, threads sequential / processes §6
                        parallel; variants -T (threads only), ``+``
                        (5 processes per sandbox), -M (Intel MPK),
                        -P (process pool)
:class:`ChironPlatform` m-to-n wraps from a PGP deployment plan;       §3-6
                        variants -M and -P via calibration/pool
======================  =============================================  =======
"""

from repro.platforms.base import Platform, RequestResult, jittered
from repro.platforms.asf import ASFPlatform
from repro.platforms.chiron import ChironPlatform
from repro.platforms.faastlane import FaastlanePlatform
from repro.platforms.openfaas import OpenFaaSPlatform
from repro.platforms.sand import SANDPlatform
from repro.platforms.registry import build_platform, PLATFORM_BUILDERS

__all__ = [
    "ASFPlatform",
    "ChironPlatform",
    "FaastlanePlatform",
    "OpenFaaSPlatform",
    "PLATFORM_BUILDERS",
    "Platform",
    "RequestResult",
    "SANDPlatform",
    "build_platform",
    "jittered",
]
