"""OpenFaaS: the local one-to-one baseline (§2.2, Figures 3/6/13...).

Every function lives in its own warm sandbox with one dedicated CPU; an
external workflow engine fans each stage out through the local gateway, and
intermediate state crosses stage boundaries through MinIO (Figure 4's local
storage path).
"""

from __future__ import annotations

from typing import Optional

from repro.calibration import RuntimeCalibration
from repro.faults.recovery import run_unit
from repro.overload.deadline import check_deadline
from repro.platforms.base import Platform, RequestResult
from repro.runtime.memory import SandboxFootprint
from repro.runtime.network import Gateway
from repro.runtime.sandbox import Sandbox
from repro.runtime.storage import StorageService
from repro.runtime.thread import SimThread
from repro.simcore import Environment
from repro.simcore.monitor import TraceRecorder
from repro.workflow.model import FunctionSpec, Workflow


class OpenFaaSPlatform(Platform):
    """One function per sandbox, invoked through the local gateway."""

    name = "openfaas"

    def __init__(self, cal: Optional[RuntimeCalibration] = None, *,
                 storage_factory=StorageService.minio) -> None:
        super().__init__(cal)
        self._storage_factory = storage_factory

    def _attempt_function(self, env: Environment, gateway: Gateway,
                          sandbox: Sandbox, fn: FunctionSpec,
                          trace: TraceRecorder, result: RequestResult,
                          cold: bool = False):
        """One gateway round trip + in-sandbox handler execution."""
        if env.slots_armed:
            check_deadline(env, entity=fn.name)
        start = env.now
        yield from gateway.invoke(entity=fn.name)
        if cold and not sandbox.booted:
            # lazy per-sandbox boot: sandboxes along the call path start one
            # stage after another — the cascading cold start of §1
            yield from sandbox.boot(cold=True)
        # of-watchdog HTTP mode: the handler runs inside the sandbox's
        # resident process (no per-request fork).
        thread = SimThread(env, name=fn.name, cpu=sandbox.cpu,
                           gil=sandbox.main_process.gil, cal=self.cal,
                           trace=trace)
        yield env.process(thread.run_behavior(fn.behavior))
        result.function_spans[fn.name] = (start, env.now)

    def _invoke_function(self, env: Environment, gateway: Gateway,
                         sandboxes, fn: FunctionSpec, trace: TraceRecorder,
                         result: RequestResult, cold: bool = False):
        """Recovery driver: 1-to-1 retries exactly one function.

        A crash loses only this function's sandbox — the smallest possible
        blast radius — and the replacement reboots cold or warm per policy.
        """
        def make_attempt():
            return self._attempt_function(env, gateway, sandboxes[fn.name],
                                          fn, trace, result, cold)

        def on_restart(mechanism):
            if mechanism in ("sandbox.crash", "sandbox.reclaim"):
                old = sandboxes[fn.name]
                if mechanism == "sandbox.reclaim":
                    old.reclaim()
                else:
                    old.crash()
                fresh = Sandbox(env, name=old.name, cores=1, cal=self.cal,
                                trace=trace)
                # a reclaimed sandbox always re-boots: the lifecycle tier
                # (snapshot/pool/cold) decides what that boot costs
                if (mechanism == "sandbox.reclaim"
                        or env.faults.policy.reboot_cold):
                    yield from fresh.boot(cold=True)
                else:
                    fresh.booted = True
                sandboxes[fn.name] = fresh

        yield from run_unit(env, make_attempt, entity=fn.name, n_functions=1,
                            unit_work_ms=fn.behavior.solo_ms,
                            expected_ms=fn.behavior.solo_ms,
                            on_restart=on_restart)

    def _execute(self, env: Environment, workflow: Workflow,
                 trace: TraceRecorder, result: RequestResult, cold: bool):
        gateway = Gateway(env, self.cal, trace=trace)
        storage = self._storage_factory(env, trace=trace)
        sandboxes = {fn.name: Sandbox(env, name=f"sb-{fn.name}", cores=1,
                                      cal=self.cal, trace=trace)
                     for fn in workflow.functions}
        for stage_idx, stage in enumerate(workflow.stages):
            if env.slots_armed:
                check_deadline(env, entity="request",
                               completed_stages=stage_idx)
            events = [env.process(self._invoke_function(
                env, gateway, sandboxes, fn, trace, result, cold))
                for fn in stage]
            yield env.all_of(events)
            result.stage_ends_ms.append(env.now)
            if stage_idx + 1 < len(workflow.stages):
                # intermediate state crosses to the next stage through the
                # object store (stateless functions, §1); storage faults
                # retry just the exchange
                size_mb = sum(fn.behavior.data_out_mb for fn in stage)
                entity = f"stage-{stage_idx}"
                yield from run_unit(
                    env, lambda: storage.exchange(size_mb, entity=entity),
                    entity=entity)

    # -- accounting ------------------------------------------------------------
    def footprints(self, workflow: Workflow) -> list[SandboxFootprint]:
        return [SandboxFootprint(functions=1, processes=1)
                for _ in workflow.functions]

    def allocated_cores(self, workflow: Workflow) -> int:
        # uniform allocation: one whole CPU per function sandbox (Obs. 4)
        return workflow.num_functions
