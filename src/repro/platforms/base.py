"""Platform interface and shared result/accounting types."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.calibration import RuntimeCalibration
from repro.errors import SimulationError
from repro.runtime.memory import SandboxFootprint, deployment_memory_mb
from repro.simcore import Environment
from repro.simcore.monitor import TraceRecorder
from repro.workflow.model import Workflow


def on_complete(event, callback) -> None:
    """Run ``callback()`` when ``event`` is processed (now, if it already
    was).  Used to stamp per-function completion times."""
    if event.callbacks is None:
        callback()
    else:
        event.callbacks.append(lambda _ev: callback())


def jittered(workflow: Workflow, seed: Optional[int],
             sigma: float = 0.08) -> Workflow:
    """Apply seeded run-to-run execution variance to a workflow.

    Experiments that need latency *distributions* (SLO violation, CDFs) run
    each request with a different seed; ``seed=None`` returns the workflow
    unchanged (deterministic median run).
    """
    if seed is None or sigma <= 0:
        return workflow
    rng = np.random.default_rng(seed)
    return workflow.map_behaviors(lambda b: b.perturbed(rng, sigma=sigma))


@dataclass
class RequestResult:
    """Outcome of one workflow request on a platform."""

    platform: str
    workflow: str
    latency_ms: float
    trace: TraceRecorder
    #: per-function (start, end) in ms since request start
    function_spans: Dict[str, tuple[float, float]] = field(default_factory=dict)
    #: per-stage completion timestamps
    stage_ends_ms: list[float] = field(default_factory=list)
    #: fault-injection ledger (``FaultInjector.summary()``); ``None`` for
    #: fault-free requests
    faults: Optional[dict] = None
    #: deadline-budget ledger (``DeadlineBudget.summary()``); ``None`` when
    #: the request ran without a deadline
    deadline: Optional[dict] = None
    #: circuit-breaker ledger (``BreakerBoard.summary()``); ``None`` when no
    #: breaker policy was installed
    overload: Optional[dict] = None
    #: lifecycle ledger (``LifecycleSession.summary()``: boot tiers, boot
    #: latency); ``None`` when no lifecycle manager governed the request
    lifecycle: Optional[dict] = None
    #: HA ledger (``HASession.summary()``: checkpoints, restores, resume
    #: stage); ``None`` when no HA policy governed the request
    ha: Optional[dict] = None

    @property
    def function_latencies(self) -> Dict[str, float]:
        """Per-function completion time since request start (Figure 15)."""
        return {name: end for name, (_start, end) in self.function_spans.items()}


class Platform(abc.ABC):
    """A serverless platform executing workflows on the simulated runtime."""

    #: short identifier used by experiments/figures ("openfaas", "chiron"...)
    name: str = "abstract"

    def __init__(self, cal: Optional[RuntimeCalibration] = None) -> None:
        self.cal = cal or RuntimeCalibration.native()

    # -- execution -----------------------------------------------------------
    @abc.abstractmethod
    def _execute(self, env: Environment, workflow: Workflow,
                 trace: TraceRecorder, result: RequestResult,
                 cold: bool):
        """Kernel process body driving one request; returns at completion."""

    def run(self, workflow: Workflow, *, cold: bool = False,
            seed: Optional[int] = None, jitter_sigma: float = 0.08,
            tracer: Optional[TraceRecorder] = None,
            faults=None, retry=None, fault_seed: int = 0,
            deadline_ms: Optional[float] = None,
            overload=None, lifecycle=None,
            arrival_ms: float = 0.0,
            ha=None, ha_resume_stage: int = 0) -> RequestResult:
        """Execute one request and return its result.

        A fresh deterministic simulation is built per request; ``seed``
        perturbs function execution times (testbed variance stand-in).
        ``tracer`` (e.g. a :class:`repro.obs.Tracer`) replaces the default
        flat recorder — its clock is bound to the simulation, and detail-mode
        hook points (GIL handoffs, gateway queueing, kernel vitals) light up.

        ``faults`` (a :class:`repro.faults.FaultPlan`) arms deterministic
        fault injection for this request, with ``retry`` (a
        :class:`repro.faults.RetryPolicy`) governing recovery and
        ``fault_seed`` decorrelating requests under one plan.  A null plan —
        or no plan — leaves the runtime entirely uninstrumented, so the
        request is bit-identical to a fault-free run.

        ``deadline_ms`` arms deadline propagation: stage/function boundaries
        cancel the request with :class:`repro.errors.DeadlineExceeded` (which
        propagates out of this call, carrying the wasted-work ledger) once
        the budget is spent.  ``overload`` (a
        :class:`repro.overload.BreakerPolicy`) installs circuit breakers
        around sandbox boot and RPC dispatch.  Leaving both at their
        defaults keeps the runtime uninstrumented — bit-identical to a run
        without the overload plane.

        ``lifecycle`` (a :class:`repro.lifecycle.LifecycleManager`) routes
        sandbox boots through the lifecycle subsystem: ``arrival_ms`` is the
        request's position on the manager's arrival clock (feeding the
        keep-alive policy's inter-arrival histogram), and boots are served
        from the cheapest tier — idle keep-alive hit, prewarm pool,
        snapshot restore, cold.  ``None`` (the default) keeps cold boots on
        the flat calibrated cost, bit-identical to builds without the
        subsystem.

        ``ha`` (a :class:`repro.core.ha.HAPolicy`) arms per-stage completion
        checkpoints: the platform persists a manifest through the object
        store after every stage barrier, and ``ha_resume_stage`` (set by the
        serving loop when replaying a request after a machine death) makes
        the stage loop start from the last durably committed stage instead
        of stage 0.  ``None`` keeps stage boundaries checkpoint-free —
        bit-identical to builds without the HA layer.
        """
        wf = jittered(workflow, seed, jitter_sigma)
        env = Environment()
        trace = tracer if tracer is not None else TraceRecorder()
        bind = getattr(trace, "bind_clock", None)
        if bind is not None:
            bind(lambda: env.now)
        injector = None
        if faults is not None and not faults.is_null:
            from repro.faults.inject import FaultInjector

            injector = FaultInjector(faults, retry, seed=fault_seed,
                                     trace=trace)
            env.faults = injector
        budget = None
        if deadline_ms is not None:
            from repro.overload.deadline import DeadlineBudget

            budget = DeadlineBudget(deadline_ms, start_ms=env.now,
                                    trace=trace)
            env.deadline = budget
        board = None
        if overload is not None:
            from repro.overload.breaker import BreakerBoard

            board = BreakerBoard(env, overload, trace=trace)
            env.overload = board
        session = None
        if lifecycle is not None:
            session = lifecycle.request((self.name, wf.name), arrival_ms,
                                        trace=trace)
            if session.manager.default_memory_mb == 0.0:
                session.manager.default_memory_mb = self.memory_mb(workflow)
            env.lifecycle = session
            # the session owns the warm/cold decision: always take the boot
            # path and let acquire() price it (a warm hit costs zero)
            cold = True
        ha_session = None
        if ha is not None and getattr(ha, "mode", "none") != "none":
            from repro.core.ha import HASession

            ha_session = HASession(env, ha, trace=trace,
                                   resume_from=ha_resume_stage)
            env.ha = ha_session
        env.arm_slots()
        result = RequestResult(platform=self.name, workflow=wf.name,
                               latency_ms=float("nan"), trace=trace)
        done = env.process(self._execute(env, wf, trace, result, cold),
                           name=f"{self.name}/{wf.name}")
        env.run(until=done)
        result.latency_ms = env.now
        if injector is not None:
            result.faults = injector.summary()
        if budget is not None:
            result.deadline = budget.summary()
        if board is not None:
            result.overload = board.summary()
        if session is not None:
            # the simulation clock is per-request; the manager's keep-alive
            # clock is the arrival timeline, so completion lands at
            # arrival + latency
            session.finish(arrival_ms + env.now)
            result.lifecycle = session.summary()
        if ha_session is not None:
            result.ha = ha_session.summary()
        if trace.detail:
            trace.metrics.inc("kernel.events", env.events_processed)
            trace.metrics.inc("requests")
        return result

    def average_latency_ms(self, workflow: Workflow, *, repeats: int = 10,
                           jitter_sigma: float = 0.08,
                           base_seed: int = 1000) -> float:
        """Mean latency over ``repeats`` jittered requests (§6.2 protocol:
        "executing each workflow without cold start at least 10 times")."""
        if repeats < 1:
            raise SimulationError("repeats must be >= 1")
        total = 0.0
        for r in range(repeats):
            total += self.run(workflow, seed=base_seed + r,
                              jitter_sigma=jitter_sigma).latency_ms
        return total / repeats

    # -- static accounting -----------------------------------------------------
    @abc.abstractmethod
    def footprints(self, workflow: Workflow) -> list[SandboxFootprint]:
        """Sandbox structure for memory accounting (Figures 8a / 16)."""

    @abc.abstractmethod
    def allocated_cores(self, workflow: Workflow) -> int:
        """Whole CPUs the deployment reserves (Figures 8b / 17)."""

    def memory_mb(self, workflow: Workflow) -> float:
        return deployment_memory_mb(self.footprints(workflow), self.cal)

    def per_sandbox_cores(self, workflow: Workflow) -> list[float]:
        """Whole CPUs per sandbox, aligned with :meth:`footprints`.

        Default: distribute the total allocation as evenly as possible with
        at least one core per sandbox.  Plan-driven platforms override this
        with their exact per-wrap cpusets.
        """
        n = len(self.footprints(workflow))
        total = max(self.allocated_cores(workflow), n)
        base, extra = divmod(total, n)
        return [float(base + (1 if i < extra else 0)) for i in range(n)]

    def state_transitions(self, workflow: Workflow) -> int:
        """Billable state transitions (ASF's extra cost line in Figure 19);
        zero for platforms without a remote state machine."""
        return 0
