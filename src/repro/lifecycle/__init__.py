"""Sandbox lifecycle management: boot tiers, keep-alive, prewarm pools.

The subsystem owns every sandbox's state machine (provisioning → warm →
idle → reclaimed) and decides, per boot, which tier serves it:

* :mod:`repro.lifecycle.policy` — :class:`BootTier` + boot-cost model, and
  the keep-alive policies (:class:`FixedTTLPolicy`, the hybrid
  usage-histogram :class:`HistogramPolicy`);
* :mod:`repro.lifecycle.state` — :class:`SandboxRecord` state machine and
  the coldest-first memory-pressure reclaimer;
* :mod:`repro.lifecycle.pool` — :class:`PrewarmPool`, per-platform pools
  of pre-booted sandboxes with async respawn and brownout shrink;
* :mod:`repro.lifecycle.manager` — :class:`LifecycleManager` (lives across
  requests) and :class:`LifecycleSession` (installed as ``env.lifecycle``,
  consulted by ``Sandbox.boot``);
* :mod:`repro.lifecycle.replay` — :func:`replay_keepalive`, the arrival
  trace replay driving the ``coldstart`` experiment.

Disabled (no manager installed) the subsystem costs one ``None`` attribute
load per boot — runs are bit-identical to builds without this package.
"""

from repro.lifecycle.manager import LifecycleManager, LifecycleSession
from repro.lifecycle.policy import (BootTier, FixedTTLPolicy,
                                    HistogramPolicy, KeepAlivePolicy,
                                    boot_cost_ms)
from repro.lifecycle.pool import PrewarmPool
from repro.lifecycle.replay import (ReplayResult, replay_keepalive,
                                    sample_service_latencies)
from repro.lifecycle.state import (SandboxRecord, SandboxState,
                                   coldest_first, reclaim_coldest)

#: typed event names the lifecycle subsystem adds to traces (pinned by the
#: golden-trace schema, mirroring ``repro.faults.FAULT_EVENT_TYPES``);
#: ``sandbox.reclaim`` is the mid-flight reclaim fault the injector raises
LIFECYCLE_EVENT_TYPES = (
    "lifecycle.boot",
    "lifecycle.idle",
    "lifecycle.reclaim",
    "lifecycle.evict",
    "lifecycle.prewarm.hit",
    "lifecycle.snapshot.created",
    "sandbox.reclaim",
)

#: every counter the lifecycle subsystem increments (also schema-pinned)
LIFECYCLE_COUNTERS = (
    "lifecycle.boots.cold",
    "lifecycle.boots.snapshot",
    "lifecycle.boots.pool",
    "lifecycle.boots.warm",
    "lifecycle.boot_ms",
    "lifecycle.snapshot.created",
    "lifecycle.reclaimed",
    "lifecycle.evicted",
    "lifecycle.keepalive.expired",
    "lifecycle.prewarm.spawned",
)

__all__ = [
    "BootTier",
    "FixedTTLPolicy",
    "HistogramPolicy",
    "KeepAlivePolicy",
    "LIFECYCLE_COUNTERS",
    "LIFECYCLE_EVENT_TYPES",
    "LifecycleManager",
    "LifecycleSession",
    "PrewarmPool",
    "ReplayResult",
    "SandboxRecord",
    "SandboxState",
    "boot_cost_ms",
    "coldest_first",
    "reclaim_coldest",
    "replay_keepalive",
    "sample_service_latencies",
]
