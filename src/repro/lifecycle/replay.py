"""Trace replay through the lifecycle manager: the cold-start experiment's
inner loop.

Running a full discrete-event simulation per arrival would make a
thousand-arrival sweep take minutes, yet the only thing that varies between
arrivals of the same workload is (a) the boot tier the lifecycle manager
answers and (b) seeded execution jitter.  So the replay samples a small pool
of jittered end-to-end service latencies from real platform simulations
once, then drives the arrival trace through a :class:`LifecycleManager`
alone: each request's latency is ``boot_cost + service_sample``, and
keep-alive / eviction / snapshot dynamics evolve exactly as they would
under the kernel because the manager *is* the same object the kernel path
installs as ``env.lifecycle``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import LifecycleError
from repro.lifecycle.manager import LifecycleManager
from repro.lifecycle.policy import KeepAlivePolicy
from repro.metrics.stats import LatencySummary, summarize_latencies
from repro.platforms.base import Platform
from repro.workflow.model import Workflow


@dataclass
class ReplayResult:
    """Outcome of one (platform, policy, trace) replay arm."""

    platform: str
    workflow: str
    policy: str
    arrivals: int
    latency: LatencySummary
    #: boots by tier value ("cold"/"snapshot"/"pool"/"warm")
    boots: dict = field(default_factory=dict)
    warm_hit_rate: float = 0.0
    evictions: int = 0
    expirations: int = 0
    snapshots_created: int = 0
    #: time-averaged idle (kept-warm) footprint over the trace, MB
    mean_idle_mb: float = 0.0
    per_instance_mb: float = 0.0
    latencies_ms: List[float] = field(default_factory=list)

    def row(self) -> dict:
        """Flat JSON/table row used by the coldstart experiment."""
        return {
            "platform": self.platform,
            "policy": self.policy,
            "arrivals": self.arrivals,
            "p50_ms": self.latency.p50_ms,
            "p99_ms": self.latency.p99_ms,
            "mean_ms": self.latency.mean_ms,
            "warm_hit_rate": self.warm_hit_rate,
            "cold": self.boots.get("cold", 0),
            "snapshot": self.boots.get("snapshot", 0),
            "pool": self.boots.get("pool", 0),
            "warm": self.boots.get("warm", 0),
            "evictions": self.evictions,
            "mean_idle_mb": self.mean_idle_mb,
        }


def sample_service_latencies(platform: Platform, workflow: Workflow, *,
                             samples: int = 16, jitter_sigma: float = 0.08,
                             base_seed: int = 4000) -> List[float]:
    """Warm end-to-end latencies from ``samples`` jittered simulations."""
    if samples < 1:
        raise LifecycleError(f"need at least one service sample, "
                             f"got {samples}")
    return [platform.run(workflow, seed=base_seed + i,
                         jitter_sigma=jitter_sigma).latency_ms
            for i in range(samples)]


def replay_keepalive(platform: Platform, workflow: Workflow, *,
                     arrivals_ms: Sequence[float],
                     policy: KeepAlivePolicy,
                     snapshots: bool = True,
                     memory_budget_mb: Optional[float] = None,
                     prewarm_target: int = 0,
                     service_samples: int = 16,
                     jitter_sigma: float = 0.08,
                     base_seed: int = 4000,
                     service_pool: Optional[Sequence[float]] = None
                     ) -> ReplayResult:
    """Replay an arrival trace for one (platform, policy) arm.

    ``arrivals_ms`` must be sorted ascending.  ``memory_budget_mb`` caps the
    idle (kept-warm) footprint — the equal-cluster-memory knob of the
    coldstart experiment.  ``prewarm_target`` provisions a pool of that many
    ready sandboxes whose respawn time is the platform's cold boot.
    ``service_pool`` short-circuits the platform simulations when the caller
    already sampled warm latencies (e.g. to share them across policy arms).
    """
    if len(arrivals_ms) == 0:
        raise LifecycleError("cannot replay an empty arrival trace")
    services = (list(service_pool) if service_pool is not None
                else sample_service_latencies(
                    platform, workflow, samples=service_samples,
                    jitter_sigma=jitter_sigma, base_seed=base_seed))
    per_instance = platform.memory_mb(workflow)
    manager = LifecycleManager(policy, snapshots=snapshots,
                               memory_budget_mb=memory_budget_mb,
                               default_memory_mb=per_instance)
    key = (platform.name, workflow.name)
    if prewarm_target > 0:
        manager.configure_pool(key, target=prewarm_target,
                               respawn_ms=platform.cal.sandbox_cold_start_ms,
                               memory_mb=per_instance)

    latencies: List[float] = []
    idle_mb_ms = 0.0
    prev_ms: Optional[float] = None
    for i, at_ms in enumerate(arrivals_ms):
        if prev_ms is not None:
            if at_ms < prev_ms:
                raise LifecycleError(
                    f"arrival trace not sorted: {at_ms} after {prev_ms}")
            idle_mb_ms += manager.idle_memory_mb(prev_ms) * (at_ms - prev_ms)
        session = manager.request(key, at_ms)
        _tier, boot_ms = session.acquire(f"{workflow.name}-replay",
                                         platform.cal)
        latency = boot_ms + services[i % len(services)]
        session.finish(at_ms + latency)
        latencies.append(latency)
        prev_ms = at_ms

    span_ms = arrivals_ms[-1] - arrivals_ms[0]
    counts = manager.counts
    boots = {tier: int(counts.get(f"lifecycle.boots.{tier}", 0))
             for tier in ("cold", "snapshot", "pool", "warm")}
    return ReplayResult(
        platform=platform.name,
        workflow=workflow.name,
        policy=policy.name,
        arrivals=len(arrivals_ms),
        latency=summarize_latencies(latencies),
        boots=boots,
        warm_hit_rate=manager.warm_hit_rate(),
        evictions=int(counts.get("lifecycle.evicted", 0)),
        expirations=int(counts.get("lifecycle.keepalive.expired", 0)),
        snapshots_created=int(counts.get("lifecycle.snapshot.created", 0)),
        mean_idle_mb=(idle_mb_ms / span_ms if span_ms > 0 else 0.0),
        per_instance_mb=per_instance,
        latencies_ms=latencies,
    )
