"""Boot tiers and keep-alive policies.

The warm/cold boundary is where serverless latency is won: a sandbox boot
can be served from three tiers —

* **cold** — the full container start (``sandbox_cold_start_ms``);
* **snapshot** — restoring a checkpointed image, a calibrated fraction of
  the cold cost, available once a first cold boot has paid the one-time
  snapshot-creation charge;
* **warm** — reviving an idle-but-kept-alive sandbox, effectively free
  (``pool`` is the same tier served from a *prewarm pool* sized ahead of
  demand rather than from this workload's own idle set).

How long a sandbox stays revivable is the keep-alive policy's call.
:class:`FixedTTLPolicy` is the industry default (a flat idle window;
``ttl_ms=0`` is the always-cold strawman).  :class:`HistogramPolicy` is the
hybrid usage-histogram policy: it tracks inter-arrival gaps per
(platform, workflow) key and picks the keep-alive window from a high
percentile of the observed gaps — short windows for chatty workloads, long
ones for sparse-but-regular ones, a conservative cap when arrivals are so
irregular the histogram has no signal.
"""

from __future__ import annotations

import abc
import bisect
import enum
import math
from typing import Dict, Hashable, Optional

from repro.calibration import RuntimeCalibration
from repro.errors import LifecycleError

#: keys are opaque to policies; platforms use (platform_name, workflow_name)
LifecycleKey = Hashable


class BootTier(str, enum.Enum):
    """How a sandbox boot was served, cheapest tier last."""

    COLD = "cold"
    SNAPSHOT = "snapshot"
    POOL = "pool"
    WARM = "warm"


def boot_cost_ms(tier: BootTier, cal: RuntimeCalibration, *,
                 creating_snapshot: bool = False) -> float:
    """Boot latency of ``tier`` under ``cal``.

    ``creating_snapshot`` adds the one-time image-creation charge to a cold
    boot (the first cold boot of a key when snapshotting is enabled).
    """
    if tier is BootTier.COLD:
        cost = cal.sandbox_cold_start_ms
        if creating_snapshot:
            cost += cal.snapshot_create_ms
        return cost
    if tier is BootTier.SNAPSHOT:
        return cal.sandbox_cold_start_ms * cal.snapshot_restore_fraction
    return 0.0  # WARM / POOL: the sandbox is already up


class KeepAlivePolicy(abc.ABC):
    """Decides how long an idle sandbox stays revivable."""

    #: short identifier used in experiment tables / JSON reports
    name: str = "abstract"

    def observe(self, key: LifecycleKey, gap_ms: float) -> None:
        """Record one inter-arrival gap for ``key`` (default: stateless)."""

    @abc.abstractmethod
    def keepalive_ms(self, key: LifecycleKey) -> float:
        """Idle window before a warm sandbox of ``key`` is reclaimed."""

    def prewarm_ms(self, key: LifecycleKey) -> float:
        """How far ahead of the next expected arrival to prewarm (0 = no
        prediction; prewarm pools then rely on their static target size)."""
        return 0.0


class FixedTTLPolicy(KeepAlivePolicy):
    """A flat keep-alive window; ``ttl_ms=0`` models always-cold."""

    def __init__(self, ttl_ms: float) -> None:
        if ttl_ms < 0 or not math.isfinite(ttl_ms):
            raise LifecycleError(f"keep-alive TTL must be finite and >= 0, "
                                 f"got {ttl_ms}")
        self.ttl_ms = float(ttl_ms)
        self.name = f"ttl-{ttl_ms:g}ms"

    def keepalive_ms(self, key: LifecycleKey) -> float:
        return self.ttl_ms


class _GapHistogram:
    """Fixed-boundary histogram of inter-arrival gaps for one key."""

    __slots__ = ("counts", "over", "total")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets
        self.over = 0      # gaps beyond the tracked range
        self.total = 0

    def add(self, bucket: Optional[int]) -> None:
        self.total += 1
        if bucket is None:
            self.over += 1
        else:
            self.counts[bucket] += 1

    def percentile_bucket(self, q: float) -> Optional[int]:
        """Index of the bucket holding the ``q`` quantile (None = above the
        tracked range)."""
        target = q * self.total
        running = 0
        for i, c in enumerate(self.counts):
            running += c
            if running >= target - 1e-12:
                return i
        return None


class HistogramPolicy(KeepAlivePolicy):
    """The hybrid usage-histogram keep-alive policy.

    Per key, inter-arrival gaps land in ``bucket_ms``-wide buckets up to
    ``max_track_ms``.  The keep-alive window is ``margin`` times the
    ``keepalive_quantile`` of the observed gaps — long enough that almost
    every observed gap would have been survived warm.  Until
    ``min_observations`` gaps have been seen the policy answers
    ``default_ttl_ms``; when more than ``oob_threshold`` of the gaps fall
    beyond the tracked range the pattern has no usable periodicity and the
    policy caps out at ``max_track_ms`` (keep warm as long as we are
    willing to track).  ``prewarm_ms`` answers the low quantile: the
    earliest a next arrival plausibly lands, which prewarm pools use as
    their lead time.
    """

    def __init__(self, *, bucket_ms: float = 1000.0,
                 max_track_ms: float = 120_000.0,
                 keepalive_quantile: float = 0.99,
                 prewarm_quantile: float = 0.05,
                 margin: float = 1.2,
                 min_observations: int = 8,
                 default_ttl_ms: float = 60_000.0,
                 oob_threshold: float = 0.5) -> None:
        if bucket_ms <= 0 or max_track_ms <= bucket_ms:
            raise LifecycleError(
                f"need 0 < bucket_ms < max_track_ms, got "
                f"{bucket_ms}/{max_track_ms}")
        if not 0.0 < prewarm_quantile < keepalive_quantile <= 1.0:
            raise LifecycleError(
                f"need 0 < prewarm_quantile < keepalive_quantile <= 1, got "
                f"{prewarm_quantile}/{keepalive_quantile}")
        if margin < 1.0 or min_observations < 1:
            raise LifecycleError(
                f"need margin >= 1 and min_observations >= 1, got "
                f"{margin}/{min_observations}")
        if not 0.0 < oob_threshold <= 1.0 or default_ttl_ms < 0:
            raise LifecycleError(
                f"need 0 < oob_threshold <= 1 and default_ttl_ms >= 0, got "
                f"{oob_threshold}/{default_ttl_ms}")
        self.bucket_ms = float(bucket_ms)
        self.max_track_ms = float(max_track_ms)
        self.keepalive_quantile = keepalive_quantile
        self.prewarm_quantile = prewarm_quantile
        self.margin = margin
        self.min_observations = min_observations
        self.default_ttl_ms = float(default_ttl_ms)
        self.oob_threshold = oob_threshold
        self.n_buckets = int(math.ceil(self.max_track_ms / self.bucket_ms))
        self._bounds = [self.bucket_ms * (i + 1)
                        for i in range(self.n_buckets)]
        self._histograms: Dict[LifecycleKey, _GapHistogram] = {}
        self.name = "hybrid"

    def observe(self, key: LifecycleKey, gap_ms: float) -> None:
        if gap_ms < 0:
            raise LifecycleError(f"negative inter-arrival gap {gap_ms}")
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = _GapHistogram(self.n_buckets)
        if gap_ms >= self.max_track_ms:
            hist.add(None)
        else:
            hist.add(bisect.bisect_left(self._bounds, gap_ms))

    def observations(self, key: LifecycleKey) -> int:
        hist = self._histograms.get(key)
        return hist.total if hist is not None else 0

    def keepalive_ms(self, key: LifecycleKey) -> float:
        hist = self._histograms.get(key)
        if hist is None or hist.total < self.min_observations:
            return self.default_ttl_ms
        if hist.over / hist.total > self.oob_threshold:
            return self.max_track_ms  # no periodicity signal: cap out
        bucket = hist.percentile_bucket(self.keepalive_quantile)
        if bucket is None:
            return self.max_track_ms
        # upper edge of the quantile bucket, stretched by the margin
        return min(self._bounds[bucket] * self.margin, self.max_track_ms)

    def prewarm_ms(self, key: LifecycleKey) -> float:
        hist = self._histograms.get(key)
        if hist is None or hist.total < self.min_observations:
            return 0.0
        bucket = hist.percentile_bucket(self.prewarm_quantile)
        if bucket is None:
            return 0.0
        # lower edge of the quantile bucket: arrivals almost never come
        # sooner, so prewarming then wastes the least warm time
        return self._bounds[bucket] - self.bucket_ms
