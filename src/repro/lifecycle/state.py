"""The per-sandbox lifecycle state machine.

Every sandbox the lifecycle subsystem manages moves through::

    PROVISIONING ──boot──▶ WARM ──request done──▶ IDLE
                            ▲                      │
                            └──────revive──────────┤
                 (keep-alive expiry / eviction /   ▼
                  mid-flight reclaim)          RECLAIMED

``WARM`` means *serving or reserved* (memory and cpuset held, a request in
flight); ``IDLE`` means *kept alive* — the sandbox holds memory but no CPU
and can be revived for free until its keep-alive window closes.  A record
whose ``idle_since_ms`` lies in the future is a sandbox that will go idle
when its in-flight request completes (the manager marks the transition as
soon as the outcome is known, which keeps the replay single-pass).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.errors import LifecycleError
from repro.lifecycle.policy import BootTier, LifecycleKey


class SandboxState(enum.Enum):
    PROVISIONING = "provisioning"
    WARM = "warm"
    IDLE = "idle"
    RECLAIMED = "reclaimed"


_VALID = {
    SandboxState.PROVISIONING: (SandboxState.WARM, SandboxState.RECLAIMED),
    SandboxState.WARM: (SandboxState.IDLE, SandboxState.RECLAIMED),
    SandboxState.IDLE: (SandboxState.WARM, SandboxState.RECLAIMED),
    SandboxState.RECLAIMED: (),
}

_record_ids = itertools.count()


@dataclass
class SandboxRecord:
    """One managed sandbox's identity, footprint and lifecycle position."""

    key: LifecycleKey
    name: str
    memory_mb: float
    state: SandboxState = SandboxState.PROVISIONING
    #: when the current state was entered (ms on the manager's clock); for
    #: IDLE this may lie in the future (in-flight request, outcome known)
    since_ms: float = 0.0
    #: IDLE only: revivable until this instant
    idle_expires_ms: float = 0.0
    #: boots served over this record's lifetime, by tier value
    boots: dict = field(default_factory=dict)
    serial: int = field(default_factory=lambda: next(_record_ids))

    def _move(self, to: SandboxState, now_ms: float) -> None:
        if to not in _VALID[self.state]:
            raise LifecycleError(
                f"sandbox {self.name!r}: invalid lifecycle transition "
                f"{self.state.value} -> {to.value}")
        self.state = to
        self.since_ms = now_ms

    # -- transitions ----------------------------------------------------------
    def to_warm(self, now_ms: float, tier: BootTier) -> None:
        """Provisioning finished, or an idle sandbox was revived."""
        self._move(SandboxState.WARM, now_ms)
        self.boots[tier.value] = self.boots.get(tier.value, 0) + 1

    def to_idle(self, idle_at_ms: float, expires_ms: float) -> None:
        """The in-flight request completed; keep warm until ``expires_ms``."""
        if expires_ms < idle_at_ms:
            raise LifecycleError(
                f"sandbox {self.name!r}: keep-alive expires before it "
                f"starts ({expires_ms} < {idle_at_ms})")
        self._move(SandboxState.IDLE, idle_at_ms)
        self.idle_expires_ms = expires_ms

    def to_reclaimed(self, now_ms: float) -> None:
        """Keep-alive expired, memory pressure evicted it, or the reclaimer
        took it mid-flight (the recoverable ``sandbox.reclaim`` fault)."""
        self._move(SandboxState.RECLAIMED, now_ms)

    # -- queries --------------------------------------------------------------
    def idle_at(self, now_ms: float) -> bool:
        """Truly idle (not pending-idle) and still within keep-alive."""
        return (self.state is SandboxState.IDLE
                and self.since_ms <= now_ms
                and self.idle_expires_ms >= now_ms)

    def expired_at(self, now_ms: float) -> bool:
        return (self.state is SandboxState.IDLE
                and self.idle_expires_ms < now_ms)


def coldest_first(records: Iterable[SandboxRecord],
                  now_ms: float) -> List[SandboxRecord]:
    """Idle records ordered longest-idle first — the eviction order the
    memory-pressure reclaimer walks.  Ties break on the record serial so
    eviction is deterministic."""
    idle = [r for r in records if r.idle_at(now_ms)]
    return sorted(idle, key=lambda r: (r.since_ms, r.serial))


def reclaim_coldest(records: Iterable[SandboxRecord], *, needed_mb: float,
                    now_ms: float,
                    budget_mb: Optional[float] = None
                    ) -> List[SandboxRecord]:
    """Evict idle sandboxes, coldest-first, until ``needed_mb`` fits.

    With ``budget_mb`` given, fit means the total idle footprint (after
    evictions) plus ``needed_mb`` stays within the budget; without it, evict
    until ``needed_mb`` has been freed.  Returns the evicted records (their
    state already moved to RECLAIMED); callers release the actual
    allocations.
    """
    if needed_mb < 0:
        raise LifecycleError(f"cannot reclaim a negative footprint "
                             f"({needed_mb} MB)")
    order = coldest_first(records, now_ms)
    evicted: List[SandboxRecord] = []
    if budget_mb is not None:
        idle_mb = sum(r.memory_mb for r in order)
        while order and idle_mb + needed_mb > budget_mb + 1e-9:
            victim = order.pop(0)
            victim.to_reclaimed(now_ms)
            idle_mb -= victim.memory_mb
            evicted.append(victim)
        return evicted
    freed = 0.0
    while order and freed < needed_mb - 1e-9:
        victim = order.pop(0)
        victim.to_reclaimed(now_ms)
        freed += victim.memory_mb
        evicted.append(victim)
    return evicted
