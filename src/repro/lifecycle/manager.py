"""The lifecycle manager: one object owning every sandbox's state machine.

A :class:`LifecycleManager` lives across requests (typically one per
experiment arm or autoscaled deployment).  Each arrival calls
:meth:`LifecycleManager.request`, which observes the inter-arrival gap for
the keep-alive policy, sweeps expired keep-alives, and hands back a
:class:`LifecycleSession` — the per-request view that platforms install as
``env.lifecycle``.  Sandbox boots then route through
:meth:`LifecycleSession.acquire`, which answers the cheapest available
tier::

    idle (same name) ▶ idle (same key) ▶ prewarm pool ▶ snapshot ▶ cold

When the request completes, :meth:`LifecycleSession.finish` parks every
acquired sandbox as idle for the policy's keep-alive window (a zero window
reclaims immediately — the always-cold strawman) and the memory-pressure
reclaimer trims the idle set back under the configured budget,
coldest-first.

The whole subsystem follows the ``env.faults`` zero-overhead contract: with
no manager installed, ``env.lifecycle`` stays ``None`` and every run is
bit-identical to a build without this module.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.calibration import RuntimeCalibration
from repro.errors import LifecycleError
from repro.lifecycle.policy import (BootTier, KeepAlivePolicy, LifecycleKey,
                                    boot_cost_ms)
from repro.lifecycle.pool import PrewarmPool
from repro.lifecycle.state import (SandboxRecord, SandboxState,
                                   reclaim_coldest)
from repro.simcore.monitor import TraceRecorder


class LifecycleManager:
    """Owns sandbox records, the keep-alive policy and the prewarm pools."""

    def __init__(self, policy: KeepAlivePolicy, *, snapshots: bool = True,
                 pool: Optional[PrewarmPool] = None,
                 memory_budget_mb: Optional[float] = None,
                 default_memory_mb: float = 0.0) -> None:
        if memory_budget_mb is not None and memory_budget_mb < 0:
            raise LifecycleError(
                f"memory budget must be >= 0, got {memory_budget_mb}")
        self.policy = policy
        self.snapshots = snapshots
        self.pool = pool
        self.memory_budget_mb = memory_budget_mb
        self.default_memory_mb = default_memory_mb
        self._records: Dict[LifecycleKey, List[SandboxRecord]] = {}
        self._snapshot_keys: Set[LifecycleKey] = set()
        self._last_arrival: Dict[LifecycleKey, float] = {}
        self.counts: Dict[str, float] = {}

    # -- bookkeeping -----------------------------------------------------------
    def _bump(self, counter: str, amount: float = 1.0) -> None:
        self.counts[counter] = self.counts.get(counter, 0.0) + amount

    # -- pools -----------------------------------------------------------------
    def configure_pool(self, key: LifecycleKey, *, target: int,
                       respawn_ms: float, memory_mb: float = 0.0) -> None:
        """Provision a prewarm pool for ``key`` (deploy-time boots)."""
        if self.pool is None:
            self.pool = PrewarmPool()
        self.pool.configure(key, target=target, respawn_ms=respawn_ms,
                            memory_mb=memory_mb)
        self._bump("lifecycle.prewarm.spawned", target)

    def shrink_pools(self, factor: float) -> None:
        """Brownout lever: cap every prewarm pool at ``factor`` of target."""
        if self.pool is not None:
            self.pool.shrink(factor)

    def restore_pools(self) -> None:
        if self.pool is not None:
            self.pool.restore()

    # -- the request entry point ----------------------------------------------
    def request(self, key: LifecycleKey, at_ms: float,
                trace: Optional[TraceRecorder] = None) -> "LifecycleSession":
        """One arrival for ``key``: feed the policy, sweep expiries, and
        return the per-request session to install as ``env.lifecycle``."""
        last = self._last_arrival.get(key)
        if last is not None:
            gap = at_ms - last
            if gap < 0:
                raise LifecycleError(
                    f"arrivals for {key!r} went backwards "
                    f"({at_ms} after {last})")
            self.policy.observe(key, gap)
        self._last_arrival[key] = at_ms
        self._sweep(at_ms, trace)
        return LifecycleSession(self, key, at_ms, trace)

    def _sweep(self, now_ms: float, trace: Optional[TraceRecorder]) -> None:
        """Reclaim every idle sandbox whose keep-alive window has closed."""
        for records in self._records.values():
            for rec in records:
                if rec.expired_at(now_ms):
                    rec.to_reclaimed(rec.idle_expires_ms)
                    self._bump("lifecycle.keepalive.expired")
                    self._bump("lifecycle.reclaimed")
                    if trace is not None and trace.detail:
                        trace.event("lifecycle.reclaim", entity=rec.name,
                                    ts_ms=rec.idle_expires_ms,
                                    reason="keepalive")
                        trace.metrics.inc("lifecycle.reclaimed")

    def _enforce_budget(self, now_ms: float,
                        trace: Optional[TraceRecorder]) -> None:
        """Trim the idle set back under the memory budget, coldest-first.

        The budget caps *idle retention* only: boots are always allowed, so
        pressure never blocks a request — it just shortens how long finished
        sandboxes stay revivable.
        """
        if self.memory_budget_mb is None:
            return
        everything = [r for recs in self._records.values() for r in recs]
        evicted = reclaim_coldest(everything, needed_mb=0.0, now_ms=now_ms,
                                  budget_mb=self.memory_budget_mb)
        for rec in evicted:
            self._bump("lifecycle.evicted")
            self._bump("lifecycle.reclaimed")
            if trace is not None and trace.detail:
                trace.event("lifecycle.evict", entity=rec.name,
                            ts_ms=now_ms, reason="memory")
                trace.metrics.inc("lifecycle.evicted")
                trace.metrics.inc("lifecycle.reclaimed")

    # -- queries ---------------------------------------------------------------
    def idle_memory_mb(self, now_ms: float) -> float:
        """Footprint of every sandbox currently kept alive (idle)."""
        return sum(r.memory_mb
                   for recs in self._records.values() for r in recs
                   if r.idle_at(now_ms))

    def records(self, key: LifecycleKey) -> List[SandboxRecord]:
        return list(self._records.get(key, ()))

    def has_snapshot(self, key: LifecycleKey) -> bool:
        return key in self._snapshot_keys

    def warm_hit_rate(self) -> float:
        """Fraction of boots served without paying any start latency."""
        warm = (self.counts.get("lifecycle.boots.warm", 0.0)
                + self.counts.get("lifecycle.boots.pool", 0.0))
        total = warm + self.counts.get("lifecycle.boots.cold", 0.0) \
            + self.counts.get("lifecycle.boots.snapshot", 0.0)
        return warm / total if total else 0.0

    def summary(self) -> dict:
        """JSON-friendly ledger across every request this manager served."""
        out = dict(sorted(self.counts.items()))
        out["warm_hit_rate"] = self.warm_hit_rate()
        out["policy"] = self.policy.name
        if self.pool is not None:
            out["pools"] = self.pool.stats()
        return out


class LifecycleSession:
    """One request's view of the lifecycle manager (``env.lifecycle``).

    Platforms create it via :meth:`LifecycleManager.request` and install it
    on the simulation environment; :meth:`repro.runtime.sandbox.Sandbox.boot`
    consults it for the boot tier and latency.  ``finish`` must be called
    exactly once when the request's outcome is known.
    """

    def __init__(self, manager: LifecycleManager, key: LifecycleKey,
                 at_ms: float, trace: Optional[TraceRecorder]) -> None:
        self.manager = manager
        self.key = key
        self.at_ms = at_ms
        self.trace = trace
        self.acquired: List[SandboxRecord] = []
        self.boots: Dict[str, int] = {}
        self.boot_ms = 0.0
        self._finished = False

    # -- the boot path ---------------------------------------------------------
    def acquire(self, name: str, cal: RuntimeCalibration,
                memory_mb: Optional[float] = None
                ) -> Tuple[BootTier, float]:
        """Serve one sandbox boot from the cheapest available tier.

        Returns the tier and the boot latency the caller must simulate
        (the session does no waiting itself).
        """
        if self._finished:
            raise LifecycleError(
                f"session for {self.key!r} already finished")
        mgr = self.manager
        now = self.at_ms
        mem = mgr.default_memory_mb if memory_mb is None else memory_mb
        records = mgr._records.setdefault(self.key, [])

        rec = self._revive(records, name, now)
        if rec is not None:
            tier, cost, creating = BootTier.WARM, 0.0, False
        elif mgr.pool is not None and mgr.pool.draw(self.key, now):
            tier, cost, creating = BootTier.POOL, 0.0, False
            rec = self._new_record(records, name, mem)
            if self.trace is not None and self.trace.detail:
                self.trace.event("lifecycle.prewarm.hit", entity=name,
                                 ts_ms=now)
        elif mgr.snapshots and self.key in mgr._snapshot_keys:
            tier = BootTier.SNAPSHOT
            cost, creating = boot_cost_ms(tier, cal), False
            rec = self._new_record(records, name, mem)
        else:
            tier = BootTier.COLD
            creating = mgr.snapshots and self.key not in mgr._snapshot_keys
            cost = boot_cost_ms(tier, cal, creating_snapshot=creating)
            rec = self._new_record(records, name, mem)
            if creating:
                mgr._snapshot_keys.add(self.key)
                mgr._bump("lifecycle.snapshot.created")
                if self.trace is not None and self.trace.detail:
                    self.trace.event("lifecycle.snapshot.created",
                                     entity=name, ts_ms=now)
                    self.trace.metrics.inc("lifecycle.snapshot.created")

        rec.to_warm(now + cost, tier)
        self.acquired.append(rec)
        self.boots[tier.value] = self.boots.get(tier.value, 0) + 1
        self.boot_ms += cost
        mgr._bump(f"lifecycle.boots.{tier.value}")
        mgr._bump("lifecycle.boot_ms", cost)
        if self.trace is not None and self.trace.detail:
            self.trace.event("lifecycle.boot", entity=name, ts_ms=now,
                             tier=tier.value, cost_ms=cost)
            self.trace.metrics.inc(f"lifecycle.boots.{tier.value}")
            self.trace.metrics.inc("lifecycle.boot_ms", cost)
        return tier, cost

    def _revive(self, records: List[SandboxRecord], name: str,
                now: float) -> Optional[SandboxRecord]:
        """Cheapest tier: an idle sandbox of this key, same name first."""
        match = None
        for rec in records:
            if rec.idle_at(now):
                if rec.name == name:
                    return rec
                if match is None:
                    match = rec
        return match

    def _new_record(self, records: List[SandboxRecord], name: str,
                    mem: float) -> SandboxRecord:
        rec = SandboxRecord(key=self.key, name=name, memory_mb=mem,
                            state=SandboxState.PROVISIONING,
                            since_ms=self.at_ms)
        records.append(rec)
        return rec

    # -- the request epilogue --------------------------------------------------
    def finish(self, at_ms: float) -> None:
        """Park every acquired sandbox as idle (or reclaim it outright when
        the policy's keep-alive window is zero) and enforce the budget."""
        if self._finished:
            return
        self._finished = True
        mgr = self.manager
        keepalive = mgr.policy.keepalive_ms(self.key)
        for rec in self.acquired:
            if rec.state is not SandboxState.WARM:
                continue  # a fault reclaimed it mid-flight
            if keepalive <= 0:
                rec.to_reclaimed(at_ms)
                mgr._bump("lifecycle.reclaimed")
                if self.trace is not None and self.trace.detail:
                    self.trace.event("lifecycle.reclaim", entity=rec.name,
                                     ts_ms=at_ms, reason="ttl0")
                    self.trace.metrics.inc("lifecycle.reclaimed")
            else:
                rec.to_idle(at_ms, at_ms + keepalive)
                if self.trace is not None and self.trace.detail:
                    self.trace.event("lifecycle.idle", entity=rec.name,
                                     ts_ms=at_ms,
                                     expires_ms=at_ms + keepalive)
        mgr._enforce_budget(at_ms, self.trace)

    def reclaim_in_flight(self, name: str, at_ms: float) -> None:
        """The fault injector took a serving sandbox (``sandbox.reclaim``).

        The record leaves WARM for RECLAIMED so ``finish`` will not park it
        idle; the recovery driver then boots a replacement through
        :meth:`acquire` like any other boot.
        """
        for rec in reversed(self.acquired):
            if rec.name == name and rec.state is SandboxState.WARM:
                rec.to_reclaimed(at_ms)
                self.manager._bump("lifecycle.reclaimed")
                if self.trace is not None and self.trace.detail:
                    self.trace.event("lifecycle.reclaim", entity=name,
                                     ts_ms=at_ms, reason="fault")
                    self.trace.metrics.inc("lifecycle.reclaimed")
                return

    def summary(self) -> dict:
        """Per-request ledger attached to ``RequestResult.lifecycle``."""
        return {"boots": dict(sorted(self.boots.items())),
                "boot_ms": self.boot_ms,
                "policy": self.manager.policy.name}
