"""Prewarm pools: sandboxes booted ahead of demand, sized per platform.

A pool holds fully-booted sandboxes for a (platform, workflow) key so a
scale-up (or a burst's first request) draws warm capacity instead of paying
a boot.  Every draw triggers an asynchronous respawn — the replacement
becomes drawable ``respawn_ms`` later — so the pool converges back to its
target between bursts.  Sizing is per key: Chiron's small-footprint wraps
make a warm slot cheap, which is exactly why the m-to-n model can afford
deeper pools than SAND/Faastlane monoliths at equal memory.

Brownout integration: under sustained overload the control plane *shrinks*
pool targets (warm slots are the most discretionary memory on the node) and
restores them on recovery.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import LifecycleError
from repro.lifecycle.policy import LifecycleKey


@dataclass
class _PoolState:
    target: int
    respawn_ms: float
    memory_mb: float
    ready: int = 0
    #: times at which in-flight respawns become drawable
    respawning: List[float] = field(default_factory=list)
    spawned: int = 0
    draws: int = 0


class PrewarmPool:
    """Per-key pools of ready-to-serve sandboxes."""

    def __init__(self) -> None:
        self._pools: Dict[LifecycleKey, _PoolState] = {}
        self._shrink_factor = 1.0

    def configure(self, key: LifecycleKey, *, target: int,
                  respawn_ms: float, memory_mb: float = 0.0) -> None:
        """Set ``key``'s pool size; the pool starts full (the initial boots
        were paid at deploy time, recorded in ``spawned``)."""
        if target < 0 or respawn_ms < 0 or memory_mb < 0:
            raise LifecycleError(
                f"pool target/respawn/memory must be >= 0, got "
                f"{target}/{respawn_ms}/{memory_mb}")
        state = _PoolState(target=target, respawn_ms=respawn_ms,
                           memory_mb=memory_mb, ready=target, spawned=target)
        self._pools[key] = state

    def _effective_target(self, state: _PoolState) -> int:
        return int(state.target * self._shrink_factor)

    def _settle(self, state: _PoolState, now_ms: float) -> None:
        target = self._effective_target(state)
        while state.respawning and state.respawning[0] <= now_ms:
            heapq.heappop(state.respawning)
            if state.ready < target:
                state.ready += 1
                state.spawned += 1
            # a respawn landing above the (possibly shrunk) target is dropped
        if state.ready > target:  # brownout shrank the pool underneath us
            state.ready = target
        # converge back toward the target: slots lost to a brownout cap (or
        # respawns dropped while shrunk) are re-spawned once there is headroom
        deficit = target - state.ready - len(state.respawning)
        for _ in range(deficit):
            heapq.heappush(state.respawning, now_ms + state.respawn_ms)

    def draw(self, key: LifecycleKey, now_ms: float) -> bool:
        """Take one warm sandbox if available; schedules the respawn."""
        state = self._pools.get(key)
        if state is None:
            return False
        self._settle(state, now_ms)
        if state.ready <= 0:
            return False
        state.ready -= 1
        state.draws += 1
        heapq.heappush(state.respawning, now_ms + state.respawn_ms)
        return True

    def available(self, key: LifecycleKey, now_ms: float) -> int:
        state = self._pools.get(key)
        if state is None:
            return 0
        self._settle(state, now_ms)
        return state.ready

    def shrink(self, factor: float) -> None:
        """Brownout lever: cap every pool at ``factor`` of its target."""
        if not 0.0 <= factor <= 1.0:
            raise LifecycleError(f"pool shrink factor must be in [0, 1], "
                                 f"got {factor}")
        self._shrink_factor = factor

    def restore(self) -> None:
        """Recovery: pools refill to their full targets via respawns."""
        self._shrink_factor = 1.0

    @property
    def shrink_factor(self) -> float:
        return self._shrink_factor

    def memory_mb(self, now_ms: float) -> float:
        """Resident footprint of every ready pool slot right now."""
        total = 0.0
        for state in self._pools.values():
            self._settle(state, now_ms)
            total += state.ready * state.memory_mb
        return total

    def stats(self) -> dict:
        return {
            str(key): {"target": s.target, "ready": s.ready,
                       "draws": s.draws, "spawned": s.spawned}
            for key, s in self._pools.items()
        }
