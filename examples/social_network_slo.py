#!/usr/bin/env python3
"""Latency-sensitive web service: trading SLO slack for resources.

The Social Network workload (compose-post path) must answer interactive
users; the operator picks an SLO and Chiron finds the cheapest deployment
meeting it.  This script sweeps the SLO and shows the resulting plans, the
measured latency distribution, and the violation rate — the Figure 14
mechanism from an operator's point of view.

Run:  python examples/social_network_slo.py
"""

from repro.apps import social_network
from repro.core import ChironManager, SloPolicy
from repro.metrics import summarize_latencies
from repro.platforms import ChironPlatform


def main() -> None:
    # A media-heavy variant of the compose-post path: image filters and
    # ML-based tagging multiply the CPU work, which is where the
    # thread-vs-process decision starts to matter.
    workflow = social_network().map_behaviors(
        lambda b: b.scaled(cpu_factor=6.0, io_factor=1.5))
    manager = ChironManager()
    print(f"workflow: {workflow.name} (media-heavy) — "
          f"{workflow.num_functions} functions, "
          f"max parallelism {workflow.max_parallelism}")
    print(f"uncontended critical path: {workflow.critical_path_ms:.1f} ms\n")

    for slo_ms in (120.0, 60.0, 45.0, 30.0):
        plan = manager.plan(workflow, slo_ms=slo_ms)
        platform = ChironPlatform(plan)
        latencies = [platform.run(workflow, seed=100 + r,
                                  jitter_sigma=0.10).latency_ms
                     for r in range(50)]
        stats = summarize_latencies(latencies)
        policy = SloPolicy(slo_ms)
        viol = 100 * policy.violation_rate(latencies)
        met = "met" if (plan.predicted_latency_ms or 0) <= slo_ms \
            else "BEST-EFFORT"
        print(f"SLO {slo_ms:6.1f} ms [{met}]: {plan.n_wraps} wrap(s), "
              f"{plan.total_cores} CPU(s) | p50 {stats.p50_ms:6.1f} "
              f"p99 {stats.p99_ms:6.1f} | violations {viol:4.1f}%")
        for wrap in plan.wraps:
            shapes = []
            for sa in wrap.stages:
                shapes.append("+".join(f"{p.mode.value[0]}{len(p.functions)}"
                                       for p in sa.processes))
            print(f"    {wrap.name}: stages [{' | '.join(shapes)}]")
    print("\nkey: t3 = 3 functions as orchestrator threads, "
          "p2 = 2 functions in a forked process")


if __name__ == "__main__":
    main()
