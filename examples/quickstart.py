#!/usr/bin/env python3
"""Quickstart: deploy a serverless workflow with the m-to-n model.

Builds a small fan-out workflow, lets Chiron profile it, partition it into
wraps under a latency SLO (PGP, Algorithm 2), and executes one request on
the simulated platform next to the OpenFaaS and Faastlane baselines.

Run:  python examples/quickstart.py
"""

from repro.core import ChironManager
from repro.platforms import ChironPlatform, FaastlanePlatform, OpenFaaSPlatform
from repro.workflow import FunctionBehavior, WorkflowBuilder


def main() -> None:
    # 1. Describe the workflow: one fetch stage, then 20 parallel workers.
    #    Behaviours are (cpu, io) segment lists in milliseconds — what the
    #    Profiler would extract from strace on a real deployment.
    workflow = (
        WorkflowBuilder("quickstart")
        .sequential("fetch", ("fetch-data", FunctionBehavior.of(
            ("cpu", 2.0), ("io", 25.0))))
        .parallel("work", [
            (f"worker-{i}", FunctionBehavior.of(("cpu", 4.0), ("io", 2.0)))
            for i in range(20)
        ])
        .build())
    print(f"workflow: {workflow.num_functions} functions, "
          f"{len(workflow.stages)} stages, "
          f"max parallelism {workflow.max_parallelism}")

    # 2. Deploy with Chiron: profile -> predict -> partition -> generate.
    manager = ChironManager()
    deployment = manager.deploy(workflow, slo_ms=80.0)
    plan = deployment.plan
    print(f"\nPGP plan for SLO=80 ms: {plan.n_wraps} wrap(s), "
          f"{plan.total_cores} CPU(s), predicted "
          f"{plan.predicted_latency_ms:.1f} ms")
    for wrap in plan.wraps:
        for sa in wrap.stages:
            modes = ", ".join(f"{p.mode.value}x{len(p.functions)}"
                              for p in sa.processes)
            print(f"  {wrap.name} stage {sa.stage_index}: {modes}")

    # 3. Execute one request on the simulated platform and the baselines.
    print("\nend-to-end latency (single warm request):")
    for platform in (ChironPlatform(plan), OpenFaaSPlatform(),
                     FaastlanePlatform()):
        result = platform.run(workflow)
        print(f"  {platform.name:10s} {result.latency_ms:7.1f} ms   "
              f"memory {platform.memory_mb(workflow):7.1f} MB   "
              f"cpus {platform.allocated_cores(workflow):3d}")

    # 4. The Generator emitted deployable orchestrator code per wrap.
    first = plan.wraps[0].name
    print(f"\ngenerated orchestrator for {first} (first 12 lines):")
    for line in deployment.orchestrator_sources[first].splitlines()[:12]:
        print("   " + line)


if __name__ == "__main__":
    main()
