#!/usr/bin/env python3
"""FINRA trade validation at scale: the paper's flagship workload.

Sweeps the parallel-stage width (5 -> 100 rule checks per trade batch) and
compares every deployment model's latency, memory, CPU allocation and
per-node throughput — the content of Figures 6, 8 and 16 in one script.

Run:  python examples/finra_trade_validation.py
"""

from repro.apps import finra
from repro.experiments.systems import chiron_performance, paper_slo_ms
from repro.metrics import throughput_report
from repro.platforms import FaastlanePlatform, OpenFaaSPlatform, build_platform


def main() -> None:
    print("FINRA: validate a trade batch against N regulatory rules\n")
    header = (f"{'rules':>6} {'system':14} {'latency':>9} {'memory':>9} "
              f"{'cpus':>5} {'rps/node':>9}")
    for width in (5, 25, 50, 100):
        workflow = finra(width)
        slo = paper_slo_ms(workflow)
        systems = [
            OpenFaaSPlatform(),
            FaastlanePlatform(),
            FaastlanePlatform(variant="T"),
            build_platform("chiron", workflow, slo_ms=slo),   # SLO-driven
            chiron_performance(workflow),                     # latency-first
        ]
        labels = ["openfaas", "faastlane", "faastlane-t",
                  f"chiron(slo={slo:.0f})", "chiron(perf)"]
        print(header)
        for label, platform in zip(labels, systems):
            rep = throughput_report(platform, workflow)
            print(f"{width:>6} {label:14} {rep.latency_ms:8.1f}m "
                  f"{platform.memory_mb(workflow):8.1f}M "
                  f"{platform.allocated_cores(workflow):5d} "
                  f"{rep.rps:9.1f}")
        print()
    print("observations to look for (paper §2.2/§6):")
    print(" * faastlane-t wins at width 5, collapses by width 50 (GIL)")
    print(" * faastlane's fork-block time grows linearly with width")
    print(" * chiron(slo) uses a fraction of the CPUs at bounded latency;")
    print("   chiron(perf) beats every baseline outright")


if __name__ == "__main__":
    main()
