#!/usr/bin/env python3
"""Define a workflow as state-machine JSON and deploy it with Chiron.

Users of AWS Step Functions describe workflows in the Amazon States
Language; this example submits an ASL-like document (an order-processing
pipeline), parses it, lets PGP partition it under an SLO, and prints the
deployment manifest plus one generated orchestrator — the full §3.1 flow
Ê through Í.

Run:  python examples/custom_workflow_statemachine.py
"""

import json

from repro.core import ChironManager, OrchestratorGenerator
from repro.workflow import from_state_machine

ORDER_PIPELINE = {
    "Comment": "order-pipeline",
    "StartAt": "Checkout",
    "States": {
        "Checkout": {
            "Type": "Task",
            "Behavior": {"segments": [["cpu", 2.0], ["io", 8.0]],
                         "data_out_mb": 0.05},
            "Next": "Verify",
        },
        "Verify": {
            "Type": "Parallel",
            "Branches": [
                {"Name": "fraud-check",
                 "Behavior": {"segments": [["cpu", 9.0], ["io", 3.0]]}},
                {"Name": "inventory-check",
                 "Behavior": {"segments": [["cpu", 1.0], ["io", 7.0]]}},
                {"Name": "price-check",
                 "Behavior": {"segments": [["cpu", 2.0], ["io", 4.0]]}},
                {"Name": "address-check",
                 "Behavior": {"segments": [["cpu", 1.5], ["io", 5.0]]}},
            ],
            "Next": "Commit",
        },
        "Commit": {
            "Type": "Parallel",
            "Branches": [
                {"Name": "charge-card",
                 "Behavior": {"segments": [["cpu", 1.0], ["io", 12.0]]}},
                {"Name": "reserve-stock",
                 "Behavior": {"segments": [["cpu", 0.8], ["io", 6.0]]}},
            ],
            "Next": "Notify",
        },
        "Notify": {
            "Type": "Task",
            "Behavior": {"segments": [["cpu", 0.5], ["io", 4.0]]},
            "End": True,
        },
    },
}


def main() -> None:
    workflow = from_state_machine(ORDER_PIPELINE)
    print(f"parsed {workflow.name!r}: {workflow.num_functions} functions in "
          f"{len(workflow.stages)} stages\n")

    manager = ChironManager()
    deployment = manager.deploy(workflow, slo_ms=45.0)
    plan = deployment.plan
    print(f"SLO 45 ms -> predicted {plan.predicted_latency_ms:.1f} ms with "
          f"{plan.n_wraps} wrap(s) / {plan.total_cores} CPU(s)\n")

    manifest = OrchestratorGenerator.deployment_manifest(
        deployment.profiled_workflow, plan)
    print("OpenFaaS deployment manifest:")
    print(json.dumps(manifest, indent=2)[:800])

    first = plan.wraps[0].name
    print(f"\ngenerated orchestrator for {first}:\n")
    print(deployment.orchestrator_sources[first])


if __name__ == "__main__":
    main()
