#!/usr/bin/env python3
"""Run a deployment plan with REAL threads and processes.

Everything else in the repository simulates; this example drives
:mod:`repro.localexec`, which executes plans with genuine
``threading.Thread`` / ``multiprocessing.Process`` / process pools and real
CPU-spin / sleep function bodies.  On a multi-core machine you can watch the
paper's thread-vs-process trade-off with your own eyes; the GIL serializes
the thread plan's CPU work while the process plan parallelizes it.

Run:  python examples/real_execution.py
"""

import os

from repro.core.wrap import (
    DeploymentPlan,
    ExecMode,
    ProcessAssignment,
    StageAssignment,
    Wrap,
)
from repro.localexec import LocalExecutor, RealProfiler, synthesize
from repro.workflow import FunctionBehavior, WorkflowBuilder


def build_workflow():
    """Four CPU-heavy workers (20 ms spin each) behind a prep step."""
    return (WorkflowBuilder("real-demo")
            .sequential("prep", ("prep", FunctionBehavior.of(
                ("cpu", 2.0), ("io", 5.0))))
            .parallel("fan", [(f"worker-{i}", FunctionBehavior.cpu(20.0))
                              for i in range(4)])
            .build())


def plan_with_mode(workflow, mode: ExecMode) -> DeploymentPlan:
    """All parallel workers as threads, or one forked process each."""
    if mode is ExecMode.THREAD:
        groups = (ProcessAssignment(
            tuple(f.name for f in workflow.stages[1]), ExecMode.THREAD),)
    else:
        groups = tuple(ProcessAssignment((f.name,), ExecMode.PROCESS)
                       for f in workflow.stages[1])
    wrap = Wrap(name="w1", stages=(
        StageAssignment(0, (ProcessAssignment(("prep",), ExecMode.THREAD),)),
        StageAssignment(1, groups),
    ))
    return DeploymentPlan(workflow_name=workflow.name, wraps=(wrap,))


def main() -> None:
    workflow = build_workflow()
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else os.cpu_count()
    print(f"host: {cores} usable core(s) — thread/process gap shows best "
          f"with >= 4\n")

    # 1. Profile one worker for real (intercepted sleeps = strace's role).
    profile = RealProfiler(repeats=2).profile(
        "worker-0", synthesize(workflow.stages[1].functions[0].behavior))
    print(f"real profile of worker-0: {profile.solo_latency_ms:.1f} ms solo "
          f"({profile.behavior.cpu_ms:.1f} cpu / "
          f"{profile.behavior.io_ms:.1f} io)\n")

    # 2. Execute the same workflow under both execution modes.
    for mode in (ExecMode.THREAD, ExecMode.PROCESS):
        plan = plan_with_mode(workflow, mode)
        with LocalExecutor(workflow, plan) as executor:
            result = executor.run()
        print(f"{mode.value:8s} plan: {result.latency_ms:7.1f} ms wall "
              f"({len(result.function_ms)} functions)")
    print("\nthreads hold the GIL while spinning, so the 4 x 20 ms of CPU "
          "serializes (~80 ms+);\nprocesses overlap it given enough cores "
          "— exactly Observation 2/3 of the paper.")


if __name__ == "__main__":
    main()
