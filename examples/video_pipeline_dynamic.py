#!/usr/bin/env python3
"""Dynamic DAGs + adaptive re-planning: beyond the paper's evaluation.

Two of the paper's §7 open problems in one script:

1. **Dynamic workflows** — the Video-FFmpeg pipeline's switch step decides
   per request whether to take the heavy *split* path (split + parallel
   encodes + merge) or the light *simple* path.  Chiron plans each branch
   and routes requests after the switch.
2. **Workload drift** — encode functions get heavier over time (higher
   bitrates); the adaptive deployer notices the SLO pressure and re-plans.

Run:  python examples/video_pipeline_dynamic.py
"""

from repro.apps import video_ffmpeg
from repro.core import AdaptiveDeployer, DynamicChironManager, \
    DynamicChironPlatform
from repro.platforms import ChironPlatform
from repro.workflow.dynamic import probabilistic_selector


def part1_dynamic_routing() -> None:
    print("== part 1: the Video-FFmpeg switch ==")
    dwf = video_ffmpeg(split_parallelism=4)
    deployment = DynamicChironManager().deploy(dwf, slo_ms=220.0)
    for name, plan in deployment.plans.items():
        print(f"  branch {name!r}: {plan.n_wraps} wrap(s), "
              f"{plan.total_cores} CPU(s), predicted "
              f"{plan.predicted_latency_ms:.1f} ms")
    platform = DynamicChironPlatform(
        deployment,
        probabilistic_selector({"split": 0.3, "simple": 0.7}, seed=42))
    latencies = [platform.run(seed=r).latency_ms for r in range(30)]
    print(f"  30 requests routed {dict(platform.routed)}; "
          f"mean {sum(latencies) / len(latencies):.1f} ms, "
          f"max {max(latencies):.1f} ms (SLO 220)\n")


def part2_adaptive_replanning() -> None:
    print("== part 2: bitrate drift and adaptive re-planning ==")
    dwf = video_ffmpeg(split_parallelism=4)
    split_wf = dwf.variant("split")

    deployer = AdaptiveDeployer(window=8, cooldown=0)
    deployer.deploy(split_wf, slo_ms=220.0)
    print(f"  initial plan: {deployer.deployment.plan.total_cores} CPU(s), "
          f"predicted {deployer.deployment.plan.predicted_latency_ms:.1f} ms")

    # the world drifts: encodes become 1.8x heavier
    drifted = split_wf.map_behaviors(lambda b: b.scaled(cpu_factor=1.8))
    platform = ChironPlatform(deployer.deployment.plan)
    for r in range(40):
        latency = platform.run(drifted, seed=500 + r).latency_ms
        event = deployer.observe(latency, current_workflow=drifted)
        if event is not None:
            print(f"  request {event.request_index}: refresh "
                  f"({event.reason}, window p90 {event.p90_ms:.1f} ms) "
                  f"{event.old_cores} -> {event.new_cores} CPU(s)")
            platform = ChironPlatform(deployer.deployment.plan)
    final = ChironPlatform(deployer.deployment.plan).run(drifted).latency_ms
    print(f"  after adaptation: {final:.1f} ms on the drifted workload "
          f"(SLO 220)")


if __name__ == "__main__":
    part1_dynamic_routing()
    part2_adaptive_replanning()
